"""Semantic validation of Theorem 3.4 and its execution-closure hypothesis.

Two complementary checks:

1. *Soundness*: on concrete automata, the exact worst-case probability
   of the composed reachability dominates the product of the exact
   worst-case probabilities of the legs — the inequality the theorem's
   syntactic rule banks on (here over the execution-closed schema of
   all non-halting adversaries, step-indexed).
2. *Necessity of execution closure*: a schema containing a single
   history-dependent adversary — cooperative on fresh fragments but
   treacherous after a particular prefix — satisfies both leg
   statements yet falsifies the composed one.  The schema is not
   execution closed, which is exactly the hypothesis Theorem 3.4 needs;
   the library's rule refuses to compose when the flag says so.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import FunctionAdversary
from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.errors import ProofError
from repro.events.reach import ReachWithinSteps
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import exact_event_probability
from repro.mdp.value_iteration import bounded_reachability
from repro.probability.space import FiniteDistribution
from repro.proofs.rules import compose
from repro.proofs.statements import ArrowStatement, StateClass


# ----------------------------------------------------------------------
# 1. Soundness on random automata (hypothesis)
# ----------------------------------------------------------------------


@st.composite
def small_automata(draw):
    """Random explicit automata over states 0..3 with 1-2 steps each."""
    n_states = 4
    states = list(range(n_states))
    steps = []
    for source in states:
        n_steps = draw(st.integers(min_value=1, max_value=2))
        for index in range(n_steps):
            support = draw(
                st.lists(
                    st.sampled_from(states), min_size=1, max_size=3,
                    unique=True,
                )
            )
            raw = draw(
                st.lists(
                    st.integers(min_value=1, max_value=5),
                    min_size=len(support), max_size=len(support),
                )
            )
            total = sum(raw)
            target = FiniteDistribution(
                {s: Fraction(w, total) for s, w in zip(support, raw)}
            )
            steps.append(Transition(source, f"a{source}_{index}", target))
    signature = ActionSignature(
        internal=frozenset(step.action for step in steps)
    )
    return ExplicitAutomaton(states, [0], signature, steps)


@given(small_automata(), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_composition_inequality_on_random_automata(automaton, t1, t2):
    """min P[0 ->(t1+t2) 3] >= min P[0 ->t1 {1,2}] * min_{s in {1,2}}
    P[s ->t2 3]: the semantic content of Theorem 3.4."""
    mid = {1, 2}
    goal = lambda s: s == 3
    leg1 = bounded_reachability(automaton, lambda s: s in mid, 0, t1)
    leg2 = min(
        bounded_reachability(automaton, goal, s, t2) for s in mid
    )
    composed = bounded_reachability(automaton, goal, 0, t1 + t2)
    # Hitting the middle set consumes at most t1 steps, leaving at
    # least t2; the worst adversary of the whole cannot do better than
    # independently worst legs.
    assert composed >= leg1 * leg2


# ----------------------------------------------------------------------
# 2. Execution closure is necessary
# ----------------------------------------------------------------------


def chain_automaton() -> ExplicitAutomaton[str]:
    """s0 --go/stall--> u --good/bad--> {goal, trap}."""
    signature = ActionSignature(
        internal=frozenset({"go", "good", "bad", "stay"})
    )
    steps = [
        Transition.deterministic("s0", "go", "u"),
        Transition.deterministic("u", "good", "goal"),
        Transition.deterministic("u", "bad", "trap"),
        Transition.deterministic("trap", "stay", "trap"),
        Transition.deterministic("goal", "stay", "goal"),
    ]
    return ExplicitAutomaton(
        ["s0", "u", "goal", "trap"], ["s0"], signature, steps
    )


def treacherous_adversary() -> FunctionAdversary:
    """Cooperates on fragments that start at ``u``; sabotages at ``u``
    whenever the history shows how it got there."""

    def choose(automaton, fragment):
        state = fragment.lstate
        steps = automaton.transitions(state)
        if state == "u":
            action = "good" if len(fragment) == 0 else "bad"
            return next(s for s in steps if s.action == action)
        if state == "s0":
            return next(s for s in steps if s.action == "go")
        return None  # halt at goal/trap

    return FunctionAdversary(choose, name="treacherous")


class TestExecutionClosureNecessity:
    def exact(self, start, target, steps):
        automaton = chain_automaton()
        tree = ExecutionAutomaton(
            automaton, treacherous_adversary(),
            ExecutionFragment.initial(start),
        )
        return exact_event_probability(
            tree, ReachWithinSteps(target, steps), max_steps=steps + 1
        )

    def test_both_legs_hold_under_the_schema(self):
        # Leg 1: from s0, u is reached within 1 step, surely.
        assert self.exact("s0", lambda s: s == "u", 1) == 1
        # Leg 2: from (a fresh fragment at) u, goal within 1, surely.
        assert self.exact("u", lambda s: s == "goal", 1) == 1

    def test_composition_fails_semantically(self):
        # Yet from s0, goal within 2 has probability 0: the adversary
        # read the history and took the trap.
        assert self.exact("s0", lambda s: s == "goal", 2) == 0

    def test_rule_refuses_without_closure(self):
        s0 = StateClass("S0", lambda s: s == "s0")
        u = StateClass("U", lambda s: s == "u")
        goal = StateClass("Goal", lambda s: s == "goal")
        leg1 = ArrowStatement(s0, u, 1, 1, "treacherous-only")
        leg2 = ArrowStatement(u, goal, 1, 1, "treacherous-only")
        with pytest.raises(ProofError):
            compose(leg1, leg2, schema_execution_closed=False)

    def test_shifted_adversary_leaves_the_singleton_schema(self):
        """The schema {treacherous} is not execution closed: the shifted
        adversary behaves differently from every member (there is only
        one member, and it disagrees)."""
        from repro.adversary.base import shift

        automaton = chain_automaton()
        adversary = treacherous_adversary()
        prefix = ExecutionFragment.initial("s0").extend("go", "u")
        shifted = shift(adversary, prefix)
        probe = ExecutionFragment.initial("u")
        original_choice = adversary.choose(automaton, probe)
        shifted_choice = shifted.choose(automaton, probe)
        assert original_choice.action == "good"
        assert shifted_choice.action == "bad"
