"""Smoke tests: the example scripts run and print what they promise.

Only the fast, exact examples run in the test suite (the Monte-Carlo
heavy ones are exercised by the benchmarks); each is executed in
process via runpy with its module namespace isolated.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "exact worst-case probability = 3/4" in out
        assert "Start --4-->_9/16 Goal" in out

    def test_adversarial_independence(self, capsys):
        out = run_example("adversarial_independence.py", capsys)
        assert "peek: Q only if P=T" in out
        assert "conjunction >= 1/4" in out

    def test_proof_ledger_walkthrough(self, capsys):
        out = run_example("proof_ledger_walkthrough.py", capsys)
        assert "E[V] = 60" in out
        assert "total expected-time bound: 63" in out
        assert "cross-schema assumption rejected" in out

    def test_exact_model_checking(self, capsys):
        out = run_example("exact_model_checking.py", capsys)
        assert "A.9" in out
        assert "max counterexample probability = 0 (holds)" in out
        assert "(claim >= 1/8)" in out

    def test_benor_consensus(self, capsys):
        out = run_example("benor_consensus.py", capsys)
        assert "through the model registry" in out
        assert "supported" in out and "REFUTED" not in out
        assert "Agreement and validity held" in out

    def test_leader_election(self, capsys, monkeypatch):
        # The example reads argv for the candidate count; pin it to 3
        # so the smoke run stays fast under pytest's own argv.
        monkeypatch.setattr(sys, "argv", ["leader_election.py", "3"])
        out = run_example("leader_election.py", capsys)
        assert "Randomized leader election, 3 candidates" in out
        assert "Expected-time bound:" in out
        assert "supported" in out and "REFUTED" not in out


class TestExamplesExist:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "lehmann_rabin_progress.py",
            "adversarial_independence.py",
            "proof_ledger_walkthrough.py",
            "leader_election.py",
            "baseline_comparison.py",
            "benor_consensus.py",
            "exact_model_checking.py",
        ],
    )
    def test_example_file_present(self, name):
        assert (EXAMPLES / name).is_file()
