"""Integration tests: the paper's claims checked end to end.

These tie the whole stack together — the Lehmann-Rabin automaton, the
Unit-Time adversaries, the event machinery, the exact round-synchronous
checker, and the proof ledger — on the actual statements of Section 6.2.
Parameters are kept small enough to run in seconds; the benchmarks run
the same checks at full scale.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_lr_statement
from repro.mdp.bounded import min_reach_probability_rounds


def strip(state):
    return state.untimed()


@pytest.fixture(scope="module")
def ring3():
    return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)


class TestLeafStatementsExactly:
    """Exact worst-case round-synchronous checks of each proposition
    on sampled start states (n = 3)."""

    def exact_min(self, ring3, target, starts, rounds):
        automaton, view = ring3
        return min(
            min_reach_probability_rounds(
                automaton, view, target, start, rounds, strip
            )
            for start in starts
        )

    def test_prop_A1_exact(self, ring3):
        starts = lr.sample_states_in(lr.P_CLASS, 3, 4, random.Random(0))
        assert self.exact_min(ring3, lr.in_critical, starts, 1) == 1

    def test_prop_A3_exact(self, ring3):
        target = lambda s: lr.in_reduced_trying(s) or lr.in_critical(s)
        starts = lr.sample_states_in(lr.T_CLASS, 3, 4, random.Random(1))
        assert self.exact_min(ring3, target, starts, 2) == 1

    def test_prop_A15_exact(self, ring3):
        target = lambda s: (
            lr.in_flip_ready(s) or lr.in_good(s) or lr.in_pre_critical(s)
        )
        starts = lr.sample_states_in(lr.RT_CLASS, 3, 4, random.Random(2))
        assert self.exact_min(ring3, target, starts, 3) == 1

    def test_prop_A14_exact(self, ring3):
        target = lambda s: lr.in_good(s) or lr.in_pre_critical(s)
        starts = lr.sample_states_in(lr.F_CLASS, 3, 4, random.Random(3))
        assert self.exact_min(ring3, target, starts, 2) >= Fraction(1, 2)

    def test_prop_A11_exact(self, ring3):
        starts = lr.sample_states_in(lr.G_CLASS, 3, 4, random.Random(4))
        assert self.exact_min(
            ring3, lr.in_pre_critical, starts, 5
        ) >= Fraction(1, 4)


class TestComposedStatement:
    def test_exact_composed_bound_on_canonical_states(self, ring3):
        """T --13-->_1/8 C, exactly, on the canonical worst states."""
        automaton, view = ring3
        states = lr.canonical_states(3)
        for name in ("all_flip", "contended", "one_trying"):
            value = min_reach_probability_rounds(
                automaton, view, lr.in_critical, states[name], 13, strip
            )
            assert value >= Fraction(1, 8), (name, value)

    def test_sampling_supports_composed_bound(self):
        setup = LRExperimentSetup.build(3, random_seeds=(1, 2))
        chain = lr.lehmann_rabin_proof()
        report = check_lr_statement(
            chain.final_statement, setup, samples_per_pair=40,
            random_starts=3,
        )
        assert not report.refuted
        assert report.min_estimate >= 0.125


class TestDerivationConsistency:
    def test_manual_chain_equals_module_chain(self):
        """Composing the leaves by hand (Prop 3.2 + Thm 3.4) gives the
        same statement the packaged derivation produces."""
        from repro.proofs.rules import chain as chain_rule
        from repro.proofs.rules import union_rule

        leaves = lr.leaf_statements()
        lifted_f = union_rule(leaves["A.14"], lr.G_CLASS | lr.P_CLASS)
        lifted_g = union_rule(leaves["A.11"], lr.P_CLASS)
        rt_to_c = chain_rule(
            [leaves["A.15"], lifted_f, lifted_g, leaves["A.1"]]
        )
        lifted = union_rule(rt_to_c, lr.C_CLASS)
        from repro.proofs.rules import compose

        final = compose(leaves["A.3"], lifted)
        assert final == lr.lehmann_rabin_proof().final_statement

    def test_expected_time_dominates_measurements(self):
        """The paper's 63 upper-bounds every measured mean (n = 3)."""
        from repro.analysis.montecarlo import measure_lr_expected_time

        setup = LRExperimentSetup.build(3, random_seeds=(5,))
        reports = measure_lr_expected_time(setup, samples=30, max_steps=6_000)
        for name, report in reports.items():
            assert report.unreached == 0, name
            assert report.mean <= 63.0, name
