"""Unit tests for event schemas and their combinators."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automaton.execution import ExecutionFragment
from repro.errors import EventError
from repro.events.combinators import Complement, Intersection, Union
from repro.events.first import FirstOccurrence
from repro.events.next_first import NextFirstOccurrence
from repro.events.reach import (
    EventuallyReach,
    ReachWithinSteps,
    ReachWithinTime,
)
from repro.events.schema import EventStatus


def frag(*parts):
    states = list(parts[0::2])
    actions = list(parts[1::2])
    return ExecutionFragment(states, actions)


class TestEventStatus:
    def test_negate(self):
        assert EventStatus.ACCEPT.negate() is EventStatus.REJECT
        assert EventStatus.REJECT.negate() is EventStatus.ACCEPT
        assert EventStatus.UNDECIDED.negate() is EventStatus.UNDECIDED


class TestReachWithinTime:
    # States are (name, time) pairs; time_of reads the second component.
    @staticmethod
    def time_of(state):
        return Fraction(state[1])

    def make(self, bound):
        return ReachWithinTime(
            target=lambda s: s[0] == "goal", time_bound=bound,
            time_of=self.time_of,
        )

    def test_accepts_when_target_hit_in_time(self):
        schema = self.make(2)
        fragment = frag(("a", 0), "x", ("goal", 1))
        assert schema.classify(fragment) is EventStatus.ACCEPT

    def test_accepts_immediately_in_target(self):
        schema = self.make(0)
        assert schema.classify(
            ExecutionFragment.initial(("goal", 5))
        ) is EventStatus.ACCEPT

    def test_rejects_once_deadline_passed(self):
        schema = self.make(2)
        fragment = frag(("a", 0), "x", ("b", 3))
        assert schema.classify(fragment) is EventStatus.REJECT

    def test_hit_exactly_at_deadline_accepted(self):
        schema = self.make(2)
        fragment = frag(("a", 0), "x", ("goal", 2))
        assert schema.classify(fragment) is EventStatus.ACCEPT

    def test_hit_after_deadline_rejected(self):
        schema = self.make(2)
        fragment = frag(("a", 0), "x", ("b", 3), "y", ("goal", 3))
        assert schema.classify(fragment) is EventStatus.REJECT

    def test_clock_is_relative_to_first_state(self):
        schema = self.make(2)
        fragment = frag(("a", 10), "x", ("goal", 11))
        assert schema.classify(fragment) is EventStatus.ACCEPT

    def test_undecided_before_deadline(self):
        schema = self.make(5)
        fragment = frag(("a", 0), "x", ("b", 1))
        assert schema.classify(fragment) is EventStatus.UNDECIDED

    def test_maximal_undecided_is_failure(self):
        schema = self.make(5)
        assert schema.decide_maximal(frag(("a", 0))) is False

    def test_accepts_set_based_target(self):
        schema = ReachWithinTime(
            target=frozenset({("goal", 1)}), time_bound=2, time_of=self.time_of
        )
        fragment = frag(("a", 0), "x", ("goal", 1))
        assert schema.classify(fragment) is EventStatus.ACCEPT

    def test_monotone_once_accepted(self):
        schema = self.make(2)
        fragment = frag(("a", 0), "x", ("goal", 1), "y", ("b", 99))
        assert schema.classify(fragment) is EventStatus.ACCEPT


class TestReachWithinSteps:
    def make(self, bound):
        return ReachWithinSteps(lambda s: s == "goal", bound)

    def test_accept_within_steps(self):
        assert self.make(2).classify(
            frag("a", "x", "goal")
        ) is EventStatus.ACCEPT

    def test_reject_after_budget(self):
        schema = self.make(1)
        assert schema.classify(frag("a", "x", "b")) is EventStatus.REJECT

    def test_hit_exactly_at_budget(self):
        schema = self.make(1)
        assert schema.classify(frag("a", "x", "goal")) is EventStatus.ACCEPT

    def test_undecided_under_budget(self):
        schema = self.make(3)
        assert schema.classify(frag("a", "x", "b")) is EventStatus.UNDECIDED


class TestEventuallyReach:
    def test_accept_on_hit(self):
        schema = EventuallyReach(lambda s: s == "goal")
        assert schema.classify(frag("a", "x", "goal")) is EventStatus.ACCEPT

    def test_never_rejects_finite_prefix(self):
        schema = EventuallyReach(lambda s: s == "goal")
        assert schema.classify(frag("a", "x", "b")) is EventStatus.UNDECIDED

    def test_maximal_without_hit_fails(self):
        schema = EventuallyReach(lambda s: s == "goal")
        assert schema.decide_maximal(frag("a")) is False


class TestFirstOccurrence:
    def make(self):
        return FirstOccurrence("flip", lambda s: s == "H")

    def test_accept_when_first_occurrence_lands_in_target(self):
        assert self.make().classify(frag("s", "flip", "H")) is EventStatus.ACCEPT

    def test_reject_when_first_occurrence_misses(self):
        assert self.make().classify(frag("s", "flip", "T")) is EventStatus.REJECT

    def test_only_first_occurrence_counts(self):
        fragment = frag("s", "flip", "T", "flip", "H")
        assert self.make().classify(fragment) is EventStatus.REJECT

    def test_undecided_before_occurrence(self):
        assert self.make().classify(frag("s", "other", "s2")) is EventStatus.UNDECIDED

    def test_vacuous_acceptance_on_maximal(self):
        assert self.make().decide_maximal(frag("s")) is True

    def test_set_target(self):
        schema = FirstOccurrence("flip", frozenset({"H"}))
        assert schema.classify(frag("s", "flip", "H")) is EventStatus.ACCEPT


class TestNextFirstOccurrence:
    def make(self):
        return NextFirstOccurrence(
            [("flip_p", lambda s: s == "pH"), ("flip_q", lambda s: s == "qT")]
        )

    def test_first_watched_action_decides(self):
        assert self.make().classify(
            frag("s", "flip_q", "qT")
        ) is EventStatus.ACCEPT

    def test_first_watched_action_can_reject(self):
        assert self.make().classify(
            frag("s", "flip_q", "qH", "flip_p", "pH")
        ) is EventStatus.REJECT

    def test_unwatched_actions_ignored(self):
        assert self.make().classify(
            frag("s", "noise", "s2")
        ) is EventStatus.UNDECIDED

    def test_vacuous_acceptance_on_maximal(self):
        assert self.make().decide_maximal(frag("s")) is True

    def test_requires_distinct_actions(self):
        with pytest.raises(EventError):
            NextFirstOccurrence(
                [("flip", lambda s: True), ("flip", lambda s: True)]
            )

    def test_requires_nonempty(self):
        with pytest.raises(EventError):
            NextFirstOccurrence([])


class TestCombinators:
    def heads(self):
        return FirstOccurrence("p", lambda s: s == "H")

    def tails(self):
        return FirstOccurrence("q", lambda s: s == "T")

    def test_intersection_accepts_when_all_accept(self):
        event = Intersection([self.heads(), self.tails()])
        fragment = frag("s", "p", "H", "q", "T")
        assert event.classify(fragment) is EventStatus.ACCEPT

    def test_intersection_rejects_on_any_reject(self):
        event = Intersection([self.heads(), self.tails()])
        fragment = frag("s", "p", "T")
        assert event.classify(fragment) is EventStatus.REJECT

    def test_intersection_undecided_otherwise(self):
        event = Intersection([self.heads(), self.tails()])
        fragment = frag("s", "p", "H")
        assert event.classify(fragment) is EventStatus.UNDECIDED

    def test_intersection_maximal_uses_vacuity(self):
        event = Intersection([self.heads(), self.tails()])
        assert event.decide_maximal(frag("s", "p", "H")) is True
        assert event.decide_maximal(frag("s")) is True

    def test_union_accepts_on_any_accept(self):
        event = Union([self.heads(), self.tails()])
        assert event.classify(frag("s", "p", "H")) is EventStatus.ACCEPT

    def test_union_rejects_when_all_reject(self):
        event = Union([self.heads(), self.tails()])
        fragment = frag("s", "p", "T", "q", "H")
        assert event.classify(fragment) is EventStatus.REJECT

    def test_complement_swaps_verdicts(self):
        event = Complement(self.heads())
        assert event.classify(frag("s", "p", "T")) is EventStatus.ACCEPT
        assert event.classify(frag("s", "p", "H")) is EventStatus.REJECT
        assert event.classify(frag("s")) is EventStatus.UNDECIDED

    def test_complement_maximal(self):
        event = Complement(self.heads())
        # Inner holds vacuously on maximal, so complement fails.
        assert event.decide_maximal(frag("s")) is False

    def test_empty_combinators_rejected(self):
        with pytest.raises(EventError):
            Intersection([])
        with pytest.raises(EventError):
            Union([])

    def test_holds_on_truncated_is_pessimistic(self):
        event = self.heads()
        assert event.holds_on(frag("s"), maximal=False) is False
        assert event.holds_on(frag("s"), maximal=True) is True
