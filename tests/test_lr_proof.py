"""Unit tests for the reconstructed Section 6.2 proof."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.errors import VerificationError


class TestLeafStatements:
    def test_the_five_propositions(self):
        leaves = lr.leaf_statements()
        assert repr(leaves["A.3"]) == "T --2-->_1 C | RT  [Unit-Time]"
        assert repr(leaves["A.15"]) == "RT --3-->_1 F | G | P  [Unit-Time]"
        assert repr(leaves["A.14"]) == "F --2-->_1/2 G | P  [Unit-Time]"
        assert repr(leaves["A.11"]) == "G --5-->_1/4 P  [Unit-Time]"
        assert repr(leaves["A.1"]) == "P --1-->_1 C  [Unit-Time]"


class TestDerivation:
    def test_final_statement_matches_paper(self):
        chain = lr.lehmann_rabin_proof()
        final = chain.final_statement
        assert final.source == lr.T_CLASS
        assert final.target == lr.C_CLASS
        assert final.time_bound == 13
        assert final.probability == Fraction(1, 8)

    def test_rests_on_exactly_the_five_leaves(self):
        chain = lr.lehmann_rabin_proof()
        leaves = chain.ledger.supporting_leaves(chain.final_id)
        assert sorted(leaves) == sorted(chain.leaf_ids.values())

    def test_explanation_cites_propositions(self):
        chain = lr.lehmann_rabin_proof()
        text = chain.ledger.explain(chain.final_id)
        for name in ("A.1", "A.3", "A.11", "A.14", "A.15"):
            assert f"Proposition {name}" in text

    def test_leaf_statements_accessor(self):
        chain = lr.lehmann_rabin_proof()
        assert chain.leaf_statements()["A.11"].probability == Fraction(1, 4)


class TestExpectedTime:
    def test_recursion_solves_to_sixty(self):
        assert lr.section_6_2_recursion().solve() == 60

    def test_overall_bound_is_63(self):
        assert lr.expected_time_bound() == 63


class TestStartStateGenerators:
    def test_random_consistent_state_respects_lemma(self):
        rng = random.Random(0)
        produced = 0
        for _ in range(200):
            state = lr.random_consistent_state(3, rng)
            if state is None:
                continue
            produced += 1
            assert lr.lemma_6_1_holds(state)
        assert produced > 50

    @pytest.mark.parametrize(
        "region",
        [lr.T_CLASS, lr.RT_CLASS, lr.F_CLASS, lr.G_CLASS, lr.P_CLASS],
    )
    def test_sample_states_in_region(self, region):
        rng = random.Random(1)
        states = lr.sample_states_in(region, 3, 5, rng)
        assert len(states) == 5
        for state in states:
            assert region.contains(state)
            assert lr.lemma_6_1_holds(state)

    def test_samples_are_distinct(self):
        rng = random.Random(2)
        states = lr.sample_states_in(lr.T_CLASS, 3, 8, rng)
        assert len({s.untimed() for s in states}) == 8

    def test_impossible_region_raises(self):
        from repro.proofs.statements import StateClass

        empty = StateClass("Empty", lambda s: False)
        with pytest.raises(VerificationError):
            lr.sample_states_in(empty, 3, 1, random.Random(0), max_attempts=200)


class TestCanonicalStates:
    def test_expected_region_membership(self):
        states = lr.canonical_states(4)
        assert lr.in_flip_ready(states["all_flip"])
        assert lr.in_reduced_trying(states["one_trying"])
        assert lr.in_good(states["good_pair"])
        assert lr.in_reduced_trying(states["contended"])
        assert lr.in_pre_critical(states["pre_critical"])
        assert lr.in_trying(states["with_exiter"])
        assert not lr.in_reduced_trying(states["with_exiter"])

    def test_all_canonical_states_satisfy_lemma(self):
        for state in lr.canonical_states(5).values():
            assert lr.lemma_6_1_holds(state)

    def test_canonical_states_scale_with_n(self):
        for n in (2, 3, 6):
            states = lr.canonical_states(n)
            assert all(s.n == n for s in states.values())
