"""Unit tests for execution automata (Definitions 2.3/2.4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.adversary.base import FunctionAdversary
from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    StoppingAdversary,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import AdversaryError
from repro.execution.automaton import ExecutionAutomaton


def initial(state):
    return ExecutionFragment.initial(state)


class TestLifting:
    def test_step_lifts_targets_to_fragments(self, coin_walk):
        tree = ExecutionAutomaton(
            coin_walk, FirstEnabledAdversary(), initial("start")
        )
        action, distribution = tree.step(initial("start"))
        assert action == "hop1"
        supports = distribution.support
        assert initial("start").extend("hop1", "middle") in supports
        assert initial("start").extend("hop1", "start") in supports

    def test_lifted_probabilities_match_definition(self, coin_walk):
        # Definition 2.3 condition 2: P'[alpha a s] = P[s].
        tree = ExecutionAutomaton(
            coin_walk, FirstEnabledAdversary(), initial("start")
        )
        _, distribution = tree.step(initial("start"))
        extended = initial("start").extend("hop1", "middle")
        assert distribution[extended] == Fraction(1, 2)

    def test_start_state_is_the_fragment(self, coin_walk):
        start = initial("start").extend("hop1", "middle")
        tree = ExecutionAutomaton(coin_walk, FirstEnabledAdversary(), start)
        assert tree.start == start

    def test_terminal_when_adversary_halts(self, coin_walk):
        tree = ExecutionAutomaton(
            coin_walk,
            StoppingAdversary(FirstEnabledAdversary(), max_steps=0),
            initial("start"),
        )
        assert tree.is_terminal(initial("start"))
        assert tree.step(initial("start")) is None

    def test_terminal_at_deadlocked_state(self, coin_walk):
        tree = ExecutionAutomaton(
            coin_walk, FirstEnabledAdversary(), initial("goal")
        )
        assert tree.is_terminal(initial("goal"))

    def test_adversary_contract_enforced(self, coin_walk):
        from repro.automaton.transition import Transition

        rogue = FunctionAdversary(
            lambda auto, frag: Transition.deterministic("start", "hop1", "goal"),
            name="rogue",
        )
        tree = ExecutionAutomaton(coin_walk, rogue, initial("start"))
        with pytest.raises(AdversaryError):
            tree.step(initial("start"))

    def test_step_memoised(self, coin_walk):
        calls = []

        def choose(auto, frag):
            calls.append(frag)
            return auto.transitions(frag.lstate)[0] if auto.transitions(
                frag.lstate
            ) else None

        tree = ExecutionAutomaton(
            coin_walk, FunctionAdversary(choose), initial("start")
        )
        tree.step(initial("start"))
        tree.step(initial("start"))
        assert len(calls) == 1


class TestEnumeration:
    def test_nodes_to_depth_counts(self, coin_walk):
        tree = ExecutionAutomaton(
            coin_walk, FirstEnabledAdversary(), initial("start")
        )
        nodes = list(tree.nodes_to_depth(2))
        # Depth 0: 1 node; depth 1: 2 children; depth 2: 4 grandchildren
        # (middle branches to {goal, middle}, start to {start, middle}).
        assert len(nodes) == 7
        assert max(depth for _, depth in nodes) == 2

    def test_nodes_fragments_extend_start(self, coin_walk):
        start = initial("start")
        tree = ExecutionAutomaton(coin_walk, FirstEnabledAdversary(), start)
        for fragment, _ in tree.nodes_to_depth(3):
            assert start.is_prefix_of(fragment)

    def test_fully_probabilistic_structure(self, coin_walk):
        # From every node at most one step is enabled (Definition 2.3
        # requires execution automata to be fully probabilistic).
        tree = ExecutionAutomaton(
            coin_walk, FirstEnabledAdversary(), initial("start")
        )
        for fragment, _ in tree.nodes_to_depth(3):
            lifted = tree.step(fragment)
            assert lifted is None or isinstance(lifted, tuple)
