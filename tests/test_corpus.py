"""Defect-corpus, differential-fuzzer, and harness-hardening suite.

Four concerns share this module:

* the standing defect corpus: every built-in entry must classify
  identically across engines x guard modes x worker counts and match
  its declared expectations (``repro corpus run`` exits 0);
* the deterministic differential fuzzer: byte-identical campaigns for
  a fixed seed and budget, at any worker count, with ``--sabotage``
  proving the harness catches, shrinks, and reports an injected
  divergence with the dedicated exit status;
* the ``repro corpus`` / ``repro fuzz`` CLI surface, including the
  emit -> add -> replay roundtrip;
* the rider hardening: ``tools/bench.py --compare`` failing fast on
  unusable trajectories, and the ``tools/lint.py`` corpus <-> taxonomy
  sync check.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro import cli, obs
from repro.cli import main
from repro.corpus import (
    ENGINES,
    MODES,
    builtin_entries,
    corpus_record,
    diff_case,
    entry_by_name,
    generate_case,
    load_file_entries,
    run_corpus,
    run_fuzz,
)
from repro.corpus import runner as corpus_runner
from repro.corpus.fuzz import check_case_from_dict, shrink_case
from repro.corpus.runner import Classification
from repro.errors import VerificationError
from repro.parallel import fork_available

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="the pooled paths need the fork method"
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_tool(name):
    """Import ``tools/<name>.py`` without touching ``sys.path``."""
    spec = importlib.util.spec_from_file_location(
        f"repro_tool_{name}", REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# Exit-status lockstep and the expectation grammar
# ----------------------------------------------------------------------


class TestExitStatuses:
    def test_runner_constants_match_cli(self):
        # The corpus layer redeclares the CLI statuses so it never
        # imports the CLI; this is the lockstep assertion.
        assert corpus_runner.EXIT_OK == 0
        assert corpus_runner.EXIT_REFUTED == 1
        assert corpus_runner.EXIT_USAGE == 2
        assert corpus_runner.EXIT_POOL == 3
        assert corpus_runner.EXIT_CONTRACT == cli.EXIT_CONTRACT == 4
        assert corpus_runner.EXIT_DIVERGENCE == cli.EXIT_DIVERGENCE == 5

    def test_divergence_status_documented_in_help(self):
        text = cli.build_parser().format_help()
        assert "engine divergence" in text


class TestClassificationGrammar:
    def cls(self, **overrides):
        base = {
            "status": "ok",
            "detail": "",
            "exit_status": 0,
            "digest": "abc",
            "flagged": (),
        }
        base.update(overrides)
        return Classification(**base)

    def test_ok(self):
        assert self.cls().matches("ok")
        assert not self.cls(flagged=("distribution",)).matches("ok")
        assert not self.cls(status="refuted").matches("ok")

    def test_refuted(self):
        assert self.cls(status="refuted", exit_status=1).matches("refuted")

    def test_flagged(self):
        flagged = self.cls(flagged=("distribution",))
        assert flagged.matches("flagged:distribution")
        assert not flagged.matches("flagged:adversary")

    def test_quarantined(self):
        cls = self.cls(
            status="quarantined", detail="adversary,fuel", exit_status=4
        )
        assert cls.matches("quarantined:fuel")
        assert not cls.matches("quarantined:closure")

    def test_error(self):
        cls = self.cls(status="error", detail="WorkerCrashError",
                       exit_status=3, digest="")
        assert cls.matches("error:WorkerCrashError")
        assert not cls.matches("error:TaskTimeoutError")

    def test_unknown_expectation_rejected(self):
        with pytest.raises(ValueError, match="unknown corpus expectation"):
            self.cls().matches("maybe")

    def test_label_excludes_flagged_kinds(self):
        # Warn-counter coverage is eager on compiled engines and lazy
        # on the tree walk, so flagged kinds are diagnostics — two
        # cells differing only there are identical.
        plain = self.cls()
        flagged = self.cls(flagged=("distribution",))
        assert plain.label == flagged.label
        assert plain.to_dict() != flagged.to_dict()


# ----------------------------------------------------------------------
# The registry and the full differential sweep
# ----------------------------------------------------------------------


class TestRegistry:
    def test_every_entry_declares_all_modes(self):
        for entry in builtin_entries():
            expectations = entry.modes_expectations()
            assert set(MODES) <= set(expectations)

    def test_entry_names_unique(self):
        names = [entry.name for entry in builtin_entries()]
        assert len(names) == len(set(names))

    def test_unknown_entry_lists_known(self):
        with pytest.raises(VerificationError, match="healthy-tiny"):
            entry_by_name("no-such-entry")

    def test_taxonomy_fully_covered(self):
        # Every strict subclass of the public taxonomy roots has an
        # entry claiming it (the lint check asserts this from the AST;
        # this is the runtime half).
        claimed = {
            entry.expected_class
            for entry in builtin_entries()
            if entry.expected_class
        }
        assert claimed == {
            "DistributionError",
            "AdversaryContractError",
            "ExecutionClosureError",
            "FuelExhaustedError",
            "QuotientInvarianceError",
            "StateBudgetExceeded",
            "UnknownModelError",
            "WorkerCrashError",
            "TaskTimeoutError",
            "ResultCorruptionError",
            "TaskExecutionError",
            "LeaseExpiredError",
            "JobStoreCorruptionError",
            "SupervisorCrashLoopError",
        }


class TestCorpusSweep:
    def test_full_builtin_sweep_is_identical_and_expected(self):
        with obs.recording() as registry:
            report = run_corpus(builtin_entries())
        assert report.ok, "\n".join(report.problems)
        assert report.exit_status == 0
        counters = registry.metrics.snapshot()["counters"]
        assert counters["corpus.entries"] == len(builtin_entries())
        assert counters["corpus.cells"] == sum(
            len(result.cells) for result in report.results
        )
        assert "corpus.mismatches" not in counters
        # Every entry that can run here ran over its full matrix; the
        # pooled entries skip as a unit only without fork.
        for result in report.results:
            if result.skipped:
                assert not fork_available()
            else:
                assert result.cells

    @needs_fork
    def test_sweep_covers_the_full_matrix(self):
        report = run_corpus(builtin_entries())
        healthy = next(
            r for r in report.results if r.name == "healthy-tiny"
        )
        seen = {(mode, engine) for mode, engine, _ in healthy.cells}
        assert seen == {
            (mode, engine) for mode in MODES for engine in ENGINES
        }
        assert {w for _, _, w in healthy.cells} == {1, 4}

    def test_report_shapes(self):
        report = run_corpus([entry_by_name("healthy-tiny")])
        data = report.to_dict()
        assert data["kind"] == "corpus_run"
        assert data["ok"] is True
        assert data["entries"] == 1
        assert "all identical" in report.describe()


# ----------------------------------------------------------------------
# Fuzzer determinism, divergence detection, shrinking
# ----------------------------------------------------------------------


class TestFuzzDeterminism:
    def test_case_stream_is_a_pure_function_of_seed(self):
        first = [generate_case(9, i) for i in range(10)]
        second = [generate_case(9, i) for i in range(10)]
        assert first == second
        assert first != [generate_case(10, i) for i in range(10)]

    def test_campaign_byte_identical_across_invocations(self):
        runs = [
            json.dumps(
                run_fuzz(seed=5, budget=20).to_dict(), sort_keys=True
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    @needs_fork
    def test_campaign_byte_identical_across_worker_counts(self):
        solo = run_fuzz(seed=7, budget=12, workers=1).to_dict()
        pooled = run_fuzz(seed=7, budget=12, workers=4).to_dict()
        assert solo == pooled

    def test_clean_campaign_finds_no_divergence(self):
        with obs.recording() as registry:
            report = run_fuzz(seed=0, budget=60)
        assert report.ok
        assert report.cases_run == 60
        counters = registry.metrics.snapshot()["counters"]
        assert counters["fuzz.cases"] == 60
        assert "fuzz.divergences" not in counters

    def test_bad_budget_and_sabotage_rejected(self):
        with pytest.raises(VerificationError, match="--budget"):
            run_fuzz(seed=0, budget=0)
        with pytest.raises(VerificationError, match="--sabotage"):
            run_fuzz(seed=0, budget=1, sabotage="gpu")

    def test_generated_cases_materialise(self):
        # Every case in the stream must build into a runnable CheckCase
        # (the corpus add path validates records the same way).
        for index in range(20):
            case = generate_case(3, index)
            check = check_case_from_dict(case)
            assert check.automaton_factory().start_states


class TestSabotage:
    def test_injected_divergence_caught_and_shrunk(self):
        report = run_fuzz(seed=3, budget=4, sabotage="batched")
        assert not report.ok
        finding = report.findings[0]
        assert finding["index"] == 0  # sabotage diverges immediately
        assert "batched" in finding["divergence"]
        assert "tree" in finding["divergence"]
        assert finding["shrink_steps"] >= 1
        shrunk, original = finding["case"], finding["original_case"]
        assert len(shrunk["states"]) <= len(original["states"])
        assert shrunk["samples"] <= original["samples"]
        # The shrunk case still diverges, and is locally minimal under
        # a representative rewrite: halving samples loses the repro
        # only because diff_case re-checks it.
        assert diff_case(shrunk, sabotage="batched")

    def test_sabotage_campaign_is_deterministic(self):
        first = run_fuzz(seed=3, budget=4, sabotage="compiled").to_dict()
        second = run_fuzz(seed=3, budget=4, sabotage="compiled").to_dict()
        assert first == second

    def test_shrink_counts_adopted_rewrites(self):
        case = generate_case(3, 0)
        with obs.recording() as registry:
            shrunk, steps = shrink_case(case, sabotage="batched")
        counters = registry.metrics.snapshot()["counters"]
        assert counters.get("fuzz.shrink_steps", 0) == steps
        assert diff_case(shrunk, sabotage="batched")

    def test_finding_round_trips_into_a_corpus_record(self):
        report = run_fuzz(seed=3, budget=2, sabotage="batched-pure")
        record = corpus_record(report.findings[0], seed=3)
        assert record["name"] == "fuzz-3-0"
        assert record["case"] == report.findings[0]["case"]
        # Records are plain JSON all the way down.
        assert json.loads(json.dumps(record)) == record


# ----------------------------------------------------------------------
# CLI surface: corpus list/run/add, fuzz, exit statuses
# ----------------------------------------------------------------------


class TestCorpusCLI:
    def run_cli(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_list_names_every_builtin(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["corpus", "list",
             "--corpus-file", str(tmp_path / "extra.jsonl")],
            capsys,
        )
        assert code == 0
        for entry in builtin_entries():
            assert entry.name in out

    def test_list_json_is_canonical(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["corpus", "list", "--json",
             "--corpus-file", str(tmp_path / "extra.jsonl")],
            capsys,
        )
        assert code == 0
        rows = json.loads(out)
        assert {row["name"] for row in rows} == {
            entry.name for entry in builtin_entries()
        }

    def test_run_single_entry(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["corpus", "run", "--entry", "healthy-tiny", "--no-manifest",
             "--corpus-file", str(tmp_path / "extra.jsonl")],
            capsys,
        )
        assert code == 0
        assert "all identical" in out

    def test_run_unknown_entry_is_usage_error(self, capsys, tmp_path):
        code, _, err = self.run_cli(
            ["corpus", "run", "--entry", "bogus", "--no-manifest",
             "--corpus-file", str(tmp_path / "extra.jsonl")],
            capsys,
        )
        assert code == 2
        assert "unknown corpus entry" in err

    def test_fuzz_sabotage_exits_with_divergence_status(
        self, capsys, tmp_path
    ):
        code, out, _ = self.run_cli(
            ["fuzz", "--budget", "2", "--seed", "3",
             "--sabotage", "compiled", "--no-manifest"],
            capsys,
        )
        assert code == cli.EXIT_DIVERGENCE
        assert "minimal repro" in out

    def test_emit_add_replay_roundtrip(self, capsys, tmp_path):
        findings = tmp_path / "findings.jsonl"
        corpus_file = tmp_path / "extra.jsonl"
        # A sabotage finding is emitted as a ready-to-commit record...
        code, _, _ = self.run_cli(
            ["fuzz", "--budget", "2", "--seed", "9",
             "--sabotage", "batched", "--emit", str(findings),
             "--no-manifest"],
            capsys,
        )
        assert code == cli.EXIT_DIVERGENCE
        assert findings.exists()
        # ...ingested (with validation) into the corpus file...
        code, out, _ = self.run_cli(
            ["corpus", "add", str(findings),
             "--corpus-file", str(corpus_file)],
            capsys,
        )
        assert code == 0
        assert "added 1 entry" in out
        entries = load_file_entries(corpus_file)
        assert len(entries) == 1
        assert entries[0].agreement_only
        # ...and replayed in agreement mode: without the sabotage the
        # engines agree, so the corpus passes.
        code, out, _ = self.run_cli(
            ["corpus", "run", "--entry", entries[0].name, "--no-manifest",
             "--corpus-file", str(corpus_file)],
            capsys,
        )
        assert code == 0

    def test_add_rejects_missing_and_malformed_files(
        self, capsys, tmp_path
    ):
        corpus_file = str(tmp_path / "extra.jsonl")
        code, _, err = self.run_cli(
            ["corpus", "add", str(tmp_path / "absent.jsonl"),
             "--corpus-file", corpus_file],
            capsys,
        )
        assert code == 2
        assert "does not exist" in err
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a finding"}\n')
        code, _, err = self.run_cli(
            ["corpus", "add", str(bad), "--corpus-file", corpus_file],
            capsys,
        )
        assert code == 2
        assert "bad finding record" in err

    def test_run_rejects_malformed_corpus_file(self, capsys, tmp_path):
        corpus_file = tmp_path / "extra.jsonl"
        corpus_file.write_text("this is not json\n")
        code, _, err = self.run_cli(
            ["corpus", "run", "--no-manifest",
             "--corpus-file", str(corpus_file)],
            capsys,
        )
        assert code == 2
        assert "malformed JSON" in err


# ----------------------------------------------------------------------
# Rider: tools/bench.py --compare hardening
# ----------------------------------------------------------------------


class TestBenchCompareHardening:
    @pytest.fixture(scope="class")
    def bench(self):
        return load_tool("bench")

    def test_read_trajectory_missing(self, bench, tmp_path):
        trajectory, problem = bench.read_trajectory(tmp_path / "no.json")
        assert trajectory == []
        assert problem == "missing"

    def test_read_trajectory_unreadable(self, bench, tmp_path):
        # A directory where a file should be: read_text raises OSError.
        path = tmp_path / "BENCH_x.json"
        path.mkdir()
        trajectory, problem = bench.read_trajectory(path)
        assert trajectory == []
        assert problem.startswith("unreadable:")

    def test_read_trajectory_malformed(self, bench, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{broken")
        trajectory, problem = bench.read_trajectory(path)
        assert trajectory == []
        assert problem.startswith("malformed JSON")

    def test_read_trajectory_not_a_list(self, bench, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('{"seconds": 1.0}')
        trajectory, problem = bench.read_trajectory(path)
        assert trajectory == []
        assert problem == "not a JSON list"

    def test_read_trajectory_healthy(self, bench, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text('[{"seconds": 1.5}]')
        trajectory, problem = bench.read_trajectory(path)
        assert problem is None
        assert bench.previous_seconds(trajectory) == 1.5

    def test_load_trajectory_warns_but_tolerates(
        self, bench, tmp_path, capsys
    ):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{broken")
        assert bench.load_trajectory(path) == []
        assert "unusable" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "content,reason",
        [
            (None, "missing"),
            ("{broken", "malformed JSON"),
            ("{}", "not a JSON list"),
            ("[]", "no previous entry"),
            ('[{"total_seconds": 9}]', "no previous entry"),
        ],
    )
    def test_compare_fails_fast_without_usable_baseline(
        self, bench, tmp_path, capsys, content, reason
    ):
        # The check runs before any benchmark subprocess: a missing or
        # unusable trajectory is a one-line error and exit 3, never a
        # traceback and never a silently-skipped comparison.
        suite = bench.suite_name(bench.bench_modules(None)[0])
        if content is not None:
            (tmp_path / f"BENCH_{suite}.json").write_text(content)
        code = bench.main(
            ["--only", suite, "--out-dir", str(tmp_path), "--compare"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert f"bench: error: cannot compare {suite}: " in captured.err
        assert reason in captured.err
        assert "running" not in captured.out  # nothing executed

    def test_no_matching_modules_still_exit_2(self, bench, tmp_path, capsys):
        code = bench.main(
            ["--only", "zzz-no-such-suite", "--out-dir", str(tmp_path)]
        )
        assert code == 2
        assert "no benchmark modules matched" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Rider: tools/lint.py corpus <-> taxonomy sync
# ----------------------------------------------------------------------


class TestLintCorpusSync:
    @pytest.fixture(scope="class")
    def lint(self):
        return load_tool("lint")

    def test_repo_taxonomy_parsed(self, lint):
        required = lint.taxonomy_classes()
        assert required is not None
        assert "DistributionError" in required
        assert "WorkerCrashError" in required
        assert "StateBudgetExceeded" in required
        # Roots are not their own subclasses.
        assert "ContractViolation" not in required

    def test_repo_registry_parsed(self, lint):
        declared = lint.corpus_expected_classes()
        assert declared is not None
        assert "TaskTimeoutError" in declared

    def test_repo_is_in_sync(self, lint):
        assert lint.corpus_sync_findings() == []

    def test_missing_files_skip_gracefully(self, lint, tmp_path):
        ghost = tmp_path / "nowhere.py"
        assert lint.taxonomy_classes(ghost) is None
        assert lint.corpus_expected_classes(ghost) is None
        assert lint.corpus_sync_findings(ghost, ghost) == []

    def test_bogus_expected_class_is_flagged(self, lint, tmp_path):
        registry = tmp_path / "registry.py"
        registry.write_text(
            'Entry(expected_class="DistributionError")\n'
            'Entry(expected_class="MadeUpError")\n'
        )
        findings = lint.corpus_sync_findings(
            lint._ERRORS_MODULE, registry
        )
        assert any("MadeUpError" in message for _, _, message in findings)

    def test_uncovered_taxonomy_class_is_flagged(self, lint, tmp_path):
        errors = tmp_path / "errors.py"
        errors.write_text(
            "class ContractViolation(Exception): ...\n"
            "class NovelError(ContractViolation): ...\n"
        )
        registry = tmp_path / "registry.py"
        registry.write_text('Entry(expected_class="NovelError")\n')
        assert lint.corpus_sync_findings(errors, registry) == []
        registry.write_text("Entry(name='no-claims-here')\n")
        # No expected_class literals at all -> graceful skip, by the
        # same rule the metric catalog uses for an absent names module.
        assert lint.corpus_sync_findings(errors, registry) == []
        registry.write_text('Entry(expected_class="OtherError")\n')
        findings = lint.corpus_sync_findings(errors, registry)
        assert any("NovelError" in message for _, _, message in findings)
        assert any("OtherError" in message for _, _, message in findings)
