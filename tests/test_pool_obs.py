"""Pooled observability: worker span capture and exactly-once merging.

Two invariants from ``docs/observability.md``:

* spans recorded inside forked workers appear in the parent's merged
  trace, nested under the parent's open span, with ``task=`` /
  ``attempt=`` attribution — including for retried tasks, where only
  the winning attempt's recording ships;
* worker metrics merge exactly once per task no matter how many
  attempts, degradations, or injected faults the run survived.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.cli import main
from repro.obs.sinks import read_jsonl
from repro.parallel.faults import CRASH, FaultPlan
from repro.parallel.pool import (
    DEFAULT_POLICY,
    RunPolicy,
    _PooledRun,
    fork_available,
    run_tasks,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _traced_task(context, task):
    with obs.span("test.work", item=task):
        with obs.span("test.inner"):
            obs.incr("test.calls")
    return task * 2


class _CrashFirstAttemptOfTask:
    """Deterministically crash one task's first attempt, nothing else."""

    hang = 0.0

    def __init__(self, task_seed):
        self.task_seed = task_seed

    def decide(self, task_seed, attempt):
        if task_seed == self.task_seed and attempt == 1:
            return CRASH
        return None


class TestWorkerSpanCapture:
    def test_worker_spans_merge_under_the_parents_open_span(self):
        with obs.recording() as registry:
            with obs.span("parent.pool"):
                results = run_tasks(
                    _traced_task, None, [10, 20, 30], workers=2
                )
        assert results == [20, 40, 60]
        (root,) = registry.tracer.roots
        assert root.name == "parent.pool"
        worker_roots = [
            child for child in root.children if child.name == "test.work"
        ]
        assert [span.attributes["task"] for span in worker_roots] == [0, 1, 2]
        assert all(
            span.attributes["attempt"] == 1 for span in worker_roots
        )
        # The worker-side hierarchy survives the process boundary.
        for span in worker_roots:
            assert [child.name for child in span.children] == ["test.inner"]
            assert span.duration is not None

    def test_worker_spans_become_roots_without_an_open_parent(self):
        with obs.recording() as registry:
            run_tasks(_traced_task, None, [1, 2], workers=2)
        names = [span.name for span in registry.tracer.roots]
        assert names == ["test.work", "test.work"]

    def test_retried_task_ships_only_the_winning_attempts_spans(self):
        policy = RunPolicy(
            retries=2, faults=_CrashFirstAttemptOfTask(task_seed=1)
        )
        with obs.recording() as registry:
            with obs.span("parent.pool"):
                results = run_tasks(
                    _traced_task, None, [10, 20, 30], workers=2,
                    policy=policy,
                )
        assert results == [20, 40, 60]
        (root,) = registry.tracer.roots
        worker_roots = [
            child for child in root.children if child.name == "test.work"
        ]
        by_task = {
            span.attributes["task"]: span.attributes["attempt"]
            for span in worker_roots
        }
        # One span tree per task — the crashed attempt shipped nothing.
        assert len(worker_roots) == 3
        assert by_task == {0: 1, 1: 2, 2: 1}
        assert registry.metrics.counters["test.calls"].value == 3

    def test_no_spans_ship_when_workers_record_none(self):
        def plain(context, task):
            obs.incr("test.calls")
            return task

        with obs.recording() as registry:
            run_tasks(plain, None, [1, 2, 3], workers=2)
        assert registry.tracer.roots == []
        assert registry.metrics.counters["test.calls"].value == 3


class TestExactlyOnceMerging:
    def test_pooled_faulty_run_counts_like_a_clean_inline_run(self):
        tasks = list(range(8))

        def totals(workers, policy):
            with obs.recording() as registry:
                results = run_tasks(
                    _traced_task, None, tasks, workers=workers,
                    policy=policy,
                )
            return results, registry.metrics.counters["test.calls"].value

        clean_results, clean_count = totals(1, DEFAULT_POLICY)
        assert clean_count == len(tasks)
        faulty_policy = RunPolicy(
            retries=6, faults=FaultPlan(crash=0.4, seed=3),
            degrade_after=1,
        )
        faulty_results, faulty_count = totals(2, faulty_policy)
        assert faulty_results == clean_results
        assert faulty_count == clean_count

    def test_degraded_execution_skips_already_delivered_tasks(self):
        delivered = []
        pooled = _PooledRun(
            tasks=[10, 20], positions=[0, 1], workers=2,
            policy=DEFAULT_POLICY, mp_context=None,
            on_result=lambda position, result: delivered.append(position),
        )
        # Task 0 already delivered; a stale retry entry for it is still
        # queued (the degrade-race shape): it must not run again.
        pooled.results[0] = 99
        pooled.pending = [(0, 2, 0.0), (1, 1, 0.0)]
        executed = []

        def execute(context, task):
            executed.append(task)
            return task * 2

        pooled.execute_degraded(execute, None)
        assert executed == [20]
        assert pooled.results == {0: 99, 1: 40}
        assert delivered == [1]

    def test_cli_counters_identical_with_inject_faults(
        self, tmp_path, capsys
    ):
        def counters(path, pool=False):
            records = read_jsonl(path)
            return {
                record["name"]: record["value"]
                for record in records
                if record["type"] == "counter"
                and record["name"].startswith("pool.") == pool
            }

        clean = tmp_path / "clean.jsonl"
        faulty = tmp_path / "faulty.jsonl"
        base = ["check", "--prop", "A.14", "--samples", "4", "--json"]
        assert main([*base, "--trace-out", str(clean)]) == 0
        assert main([
            *base, "--trace-out", str(faulty),
            "--workers", "4", "--retries", "6",
            "--inject-faults", "crash=0.3,seed=7",
        ]) == 0
        capsys.readouterr()
        # The injection actually fired — this run survived retries.
        assert counters(faulty, pool=True).get("pool.retries", 0) > 0
        assert counters(faulty) == counters(clean)
