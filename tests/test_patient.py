"""Unit tests for the patient (timed) construction."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.patient import TimedState, elapsed_time, patient
from repro.automaton.signature import TIME_PASSAGE, ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution


@pytest.fixture
def base() -> ExplicitAutomaton[str]:
    return ExplicitAutomaton(
        states=["a", "b"],
        start_states=["a"],
        signature=ActionSignature(internal={"go"}),
        steps=[Transition("a", "go", FiniteDistribution.bernoulli("a", "b"))],
    )


class TestPatient:
    def test_start_states_carry_time_zero(self, base):
        timed = patient(base)
        assert timed.start_states == (TimedState("a", Fraction(0)),)

    def test_discrete_steps_preserve_time(self, base):
        timed = patient(base)
        start = TimedState("a", Fraction(3))
        go_steps = [s for s in timed.transitions(start) if s.action == "go"]
        assert len(go_steps) == 1
        for target in go_steps[0].target.support:
            assert target.now == Fraction(3)

    def test_time_passage_steps_added(self, base):
        timed = patient(base, increments=[Fraction(1, 2), Fraction(2)])
        start = timed.start_states[0]
        passages = [
            s for s in timed.transitions(start) if s.action == TIME_PASSAGE
        ]
        amounts = {s.target.the_point().now for s in passages}
        assert amounts == {Fraction(1, 2), Fraction(2)}

    def test_time_passage_is_dirac_and_base_preserving(self, base):
        timed = patient(base)
        start = timed.start_states[0]
        for step in timed.transitions(start):
            if step.action == TIME_PASSAGE:
                assert step.is_deterministic()
                assert step.target.the_point().base == "b" or \
                    step.target.the_point().base == "a"
                assert step.target.the_point().base == start.base

    def test_terminal_states_still_let_time_pass(self, base):
        timed = patient(base)
        terminal = TimedState("b", Fraction(5))
        steps = timed.transitions(terminal)
        assert steps and all(step.action == TIME_PASSAGE for step in steps)

    def test_signature_gains_internal_time_passage(self, base):
        timed = patient(base)
        assert timed.signature.is_internal(TIME_PASSAGE)
        assert timed.signature.is_internal("go")

    def test_nonpositive_increment_rejected(self, base):
        with pytest.raises(AutomatonError):
            patient(base, increments=[Fraction(0)])

    def test_empty_increments_rejected(self, base):
        with pytest.raises(AutomatonError):
            patient(base, increments=[])

    def test_reserved_action_clash_rejected(self):
        clashing = ExplicitAutomaton(
            ["a"], ["a"],
            ActionSignature(internal={TIME_PASSAGE}),
            [],
        )
        with pytest.raises(AutomatonError):
            patient(clashing)


class TestTimedState:
    def test_advanced(self):
        state = TimedState("a", Fraction(1))
        assert state.advanced(Fraction(1, 2)) == TimedState("a", Fraction(3, 2))

    def test_elapsed_time(self):
        assert elapsed_time(
            ["x"], [Fraction(1), Fraction(3)]
        ) == Fraction(2)

    def test_elapsed_time_empty_rejected(self):
        with pytest.raises(AutomatonError):
            elapsed_time([], [])
