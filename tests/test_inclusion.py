"""Unit tests for the semantic-inclusion registry."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.errors import ProofError
from repro.algorithms.lehmann_rabin.inclusions import lehmann_rabin_inclusions
from repro.proofs.inclusion import InclusionRegistry
from repro.proofs.statements import ArrowStatement, StateClass


def cls(name, predicate=None):
    return StateClass(name, predicate or (lambda s: False))


class TestDeclare:
    def test_declaration_recorded(self):
        registry = InclusionRegistry()
        a, b = cls("A"), cls("B")
        record = registry.declare(a, b, "by definition")
        assert record.evidence == "by definition"
        assert registry.declarations == (record,)

    def test_evidence_required(self):
        registry = InclusionRegistry()
        with pytest.raises(ProofError):
            registry.declare(cls("A"), cls("B"), "")

    def test_samples_can_refute(self):
        registry = InclusionRegistry()
        evens = StateClass("Evens", lambda s: s % 2 == 0)
        small = StateClass("Small", lambda s: s < 10)
        with pytest.raises(ProofError):
            registry.declare(evens, small, "wrong", samples=[12])

    def test_consistent_samples_accepted(self):
        registry = InclusionRegistry()
        evens = StateClass("Evens", lambda s: s % 2 == 0)
        ints = StateClass("Ints", lambda s: True)
        registry.declare(evens, ints, "evens are integers", samples=range(20))


class TestEntailment:
    def test_syntactic_inclusion_free(self):
        registry = InclusionRegistry()
        a, b = cls("A"), cls("B")
        assert registry.entails(a, a | b)

    def test_declared_inclusion(self):
        registry = InclusionRegistry()
        a, b = cls("A"), cls("B")
        registry.declare(a, b, "decl")
        assert registry.entails(a, b)
        assert not registry.entails(b, a)

    def test_transitivity(self):
        registry = InclusionRegistry()
        a, b, c = cls("A"), cls("B"), cls("C")
        registry.declare(a, b, "one")
        registry.declare(b, c, "two")
        assert registry.entails(a, c)

    def test_union_on_the_right(self):
        registry = InclusionRegistry()
        a, b, d = cls("A"), cls("B"), cls("D")
        registry.declare(a, b, "decl")
        assert registry.entails(a, b | d)

    def test_underivable(self):
        registry = InclusionRegistry()
        assert not registry.entails(cls("A"), cls("Z"))


class TestRules:
    def arrow(self, source, target):
        return ArrowStatement(source, target, 1, Fraction(1, 2), "S")

    def test_strengthen_source_via_registry(self):
        registry = InclusionRegistry()
        a, b, goal = cls("A"), cls("B"), cls("Goal")
        registry.declare(a, b, "decl")
        statement = self.arrow(b, goal)
        restricted = registry.strengthen_source(statement, a)
        assert restricted.source == a
        assert restricted.probability == statement.probability

    def test_widen_target_via_registry(self):
        registry = InclusionRegistry()
        goal, bigger, start = cls("Goal"), cls("Bigger"), cls("Start")
        registry.declare(goal, bigger, "decl")
        widened = registry.widen_target(self.arrow(start, goal), bigger)
        assert widened.target == bigger

    def test_underivable_rejected(self):
        registry = InclusionRegistry()
        statement = self.arrow(cls("B"), cls("Goal"))
        with pytest.raises(ProofError):
            registry.strengthen_source(statement, cls("A"))
        with pytest.raises(ProofError):
            registry.widen_target(statement, cls("Z"))


class TestLehmannRabinRegistry:
    def samples(self):
        rng = random.Random(0)
        states = []
        for _ in range(300):
            state = lr.random_consistent_state(3, rng)
            if state is not None:
                states.append(state)
        return states

    def test_registry_builds_with_samples(self):
        registry = lehmann_rabin_inclusions(self.samples())
        assert len(registry.declarations) == 4

    def test_section_6_2_inclusions_derivable(self):
        registry = lehmann_rabin_inclusions(self.samples())
        assert registry.entails(lr.G_CLASS, lr.RT_CLASS)
        assert registry.entails(lr.F_CLASS, lr.T_CLASS)  # via RT
        assert registry.entails(lr.G_CLASS, lr.T_CLASS)
        assert registry.entails(lr.P_CLASS, lr.T_CLASS)
        assert not registry.entails(lr.T_CLASS, lr.G_CLASS)

    def test_strengthening_a_leaf(self):
        """A use the paper makes implicitly: the composed statement
        restricted to the smaller start set G."""
        registry = lehmann_rabin_inclusions(self.samples())
        final = lr.lehmann_rabin_proof().final_statement
        restricted = registry.strengthen_source(final, lr.G_CLASS)
        assert restricted.source == lr.G_CLASS
        assert restricted.probability == final.probability
