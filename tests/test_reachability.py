"""Unit tests for reachability and invariant checking."""

from __future__ import annotations

import pytest

from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.reachability import (
    check_inductive_invariant,
    check_invariant,
    reachable_states,
)
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.errors import VerificationError


def linear(n: int) -> ExplicitAutomaton[int]:
    signature = ActionSignature(internal={"step"})
    steps = [Transition.deterministic(i, "step", i + 1) for i in range(n)]
    return ExplicitAutomaton(range(n + 1), [0], signature, steps)


class TestReachableStates:
    def test_chain(self):
        assert reachable_states(linear(4)) == {0, 1, 2, 3, 4}

    def test_unreachable_island_excluded(self):
        signature = ActionSignature(internal={"step"})
        auto = ExplicitAutomaton(
            ["a", "b", "island"],
            ["a"],
            signature,
            [Transition.deterministic("a", "step", "b")],
        )
        assert reachable_states(auto) == {"a", "b"}

    def test_probabilistic_branches_explored(self, branching_automaton):
        assert reachable_states(branching_automaton) == {"s0", "s1", "s2"}

    def test_cycles_terminate(self):
        signature = ActionSignature(internal={"loop"})
        auto = ExplicitAutomaton(
            ["a", "b"],
            ["a"],
            signature,
            [
                Transition.deterministic("a", "loop", "b"),
                Transition.deterministic("b", "loop", "a"),
            ],
        )
        assert reachable_states(auto) == {"a", "b"}

    def test_max_states_guard(self):
        with pytest.raises(VerificationError):
            reachable_states(linear(100), max_states=10)


class TestCheckInvariant:
    def test_holds_everywhere(self):
        assert check_invariant(linear(5), lambda s: s <= 5) is None

    def test_violation_found_with_witness(self):
        violation = check_invariant(linear(5), lambda s: s < 3)
        assert violation is not None
        assert violation.state == 3
        assert violation.witness.lstate == 3
        assert violation.witness.fstate == 0
        assert len(violation.witness) == 3  # shortest path

    def test_violation_at_start_state(self):
        violation = check_invariant(linear(2), lambda s: s != 0)
        assert violation is not None
        assert violation.state == 0
        assert len(violation.witness) == 0

    def test_str_mentions_state(self):
        violation = check_invariant(linear(2), lambda s: s < 1)
        assert "1" in str(violation)

    def test_max_states_guard(self):
        with pytest.raises(VerificationError):
            check_invariant(linear(100), lambda s: True, max_states=5)


class TestInductiveInvariant:
    def test_inductive_invariant_has_no_violations(self):
        auto = linear(4)
        violations = check_inductive_invariant(
            auto, lambda s: 0 <= s <= 4, set(range(5))
        )
        assert violations == []

    def test_non_inductive_invariant_reports_steps(self):
        auto = linear(4)
        violations = check_inductive_invariant(
            auto, lambda s: s != 3, set(range(5))
        )
        assert violations == [(2, "step", 3)]

    def test_violating_sources_are_skipped(self):
        auto = linear(4)
        # States violating the invariant don't need preservation.
        violations = check_inductive_invariant(
            auto, lambda s: s >= 3, set(range(5))
        )
        assert violations == []
