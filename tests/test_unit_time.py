"""Unit tests for the Unit-Time round-based adversaries."""

from __future__ import annotations

import random

import pytest

from repro.adversary.base import shift
from repro.adversary.deterministic import FirstEnabledAdversary
from repro.adversary.search import (
    HashedRandomRoundPolicy,
    fragment_digest,
    seeded_policies,
)
from repro.adversary.unit_time import (
    ADVANCE_TIME,
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RotatingRoundPolicy,
    RoundBasedAdversary,
    steps_of_process,
    unit_time_schema,
)
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import TIME_PASSAGE
from repro.errors import AdversaryError


@pytest.fixture
def ring3():
    n = 3
    return lr.lehmann_rabin_automaton(n), lr.LRProcessView(n)


def initial(state):
    return ExecutionFragment.initial(state)


def run_steps(automaton, adversary, start, count, seed=0):
    """Sample ``count`` steps, returning the fragment."""
    rng = random.Random(seed)
    fragment = initial(start)
    for _ in range(count):
        step = adversary.checked_choose(automaton, fragment)
        if step is None:
            break
        fragment = fragment.extend(step.action, step.target.sample(rng))
    return fragment


class TestRoundStructure:
    def test_every_ready_process_steps_each_round(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        fragment = run_steps(automaton, adversary, start, 40)
        # Split actions into rounds at time-passage boundaries and check
        # the Unit-Time obligation on complete rounds: every process
        # ready at round start stepped during the round.
        states = fragment.states
        actions = fragment.actions
        round_start_state = states[0]
        stepped = set()
        for i, action in enumerate(actions):
            if action == TIME_PASSAGE:
                ready = view.ready(round_start_state)
                assert ready <= stepped, (
                    f"round violated Unit-Time: ready {ready}, "
                    f"stepped {stepped}"
                )
                stepped = set()
                round_start_state = states[i + 1]
            else:
                stepped.add(view.process_of(action))

    def test_time_advances_without_bound(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        fragment = run_steps(automaton, adversary, start, 200)
        assert lr.lr_time_of(fragment.lstate) >= 10

    def test_max_rounds_halts(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(
            view, FifoRoundPolicy(), max_rounds=2
        )
        start = lr.canonical_states(3)["all_flip"]
        fragment = run_steps(automaton, adversary, start, 500)
        assert lr.lr_time_of(fragment.lstate) == 2
        assert adversary.choose(automaton, fragment) is None

    def test_fifo_schedules_lowest_pending_first(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        step = adversary.choose(automaton, initial(start))
        assert view.process_of(step.action) == 0

    def test_reversed_schedules_highest_pending_first(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, ReversedRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        step = adversary.choose(automaton, initial(start))
        assert view.process_of(step.action) == 2

    def test_rotating_changes_leader_by_round(self, ring3):
        automaton, view = ring3
        policy = RotatingRoundPolicy()
        adversary = RoundBasedAdversary(view, policy)
        start = lr.canonical_states(3)["contended"]
        # Round 0: leader is pending[0]; after one time passage the
        # leader shifts to pending[1].
        fragment = initial(start)
        first = adversary.choose(automaton, fragment)
        assert view.process_of(first.action) == 0
        one_round = initial(start)
        rng = random.Random(0)
        while True:
            step = adversary.checked_choose(automaton, one_round)
            one_round = one_round.extend(
                step.action, step.target.sample(rng)
            )
            if step.action == TIME_PASSAGE:
                break
        second = adversary.choose(automaton, one_round)
        assert view.process_of(second.action) == 1

    def test_policies_must_not_request_time_passage_directly(self, ring3):
        automaton, view = ring3

        class BadPolicy(FifoRoundPolicy):
            def next_move(self, automaton, fragment, pending, view):
                for step in automaton.transitions(fragment.lstate):
                    if step.action == TIME_PASSAGE:
                        return step
                return ADVANCE_TIME

        adversary = RoundBasedAdversary(view, BadPolicy())
        start = lr.canonical_states(3)["all_flip"]
        with pytest.raises(AdversaryError):
            adversary.choose(automaton, initial(start))

    def test_advancing_with_pending_rejected(self, ring3):
        automaton, view = ring3

        class ImpatientPolicy(FifoRoundPolicy):
            def next_move(self, automaton, fragment, pending, view):
                return ADVANCE_TIME

        adversary = RoundBasedAdversary(view, ImpatientPolicy())
        start = lr.canonical_states(3)["all_flip"]
        with pytest.raises(AdversaryError):
            adversary.choose(automaton, initial(start))


class TestStepsOfProcess:
    def test_filters_by_process(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["all_flip"]
        steps = steps_of_process(automaton, start, view, 1)
        assert steps and all(
            view.process_of(step.action) == 1 for step in steps
        )

    def test_no_steps_for_time_passage_process(self, ring3):
        automaton, view = ring3
        assert view.process_of(TIME_PASSAGE) is None


class TestSchema:
    def test_contains_round_based_over_same_view(self, ring3):
        _, view = ring3
        schema = unit_time_schema(view)
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        assert schema.contains(adversary)
        assert schema.execution_closed

    def test_contains_shifted_members(self, ring3):
        automaton, view = ring3
        schema = unit_time_schema(view)
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        fragment = run_steps(automaton, adversary, start, 5)
        assert schema.contains(shift(adversary, fragment))

    def test_shifted_member_obeys_definition_3_3(self, ring3):
        """The shift wrapper satisfies A'(alpha') = A(alpha ^ alpha')
        on Unit-Time members too — the equation Theorem 3.4's proof
        rides on."""
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        start = lr.canonical_states(3)["all_flip"]
        prefix = run_steps(automaton, adversary, start, 4, seed=2)
        shifted = shift(adversary, prefix)
        probe = ExecutionFragment.initial(prefix.lstate)
        for _ in range(6):
            expected = adversary.choose(automaton, prefix.concat(probe))
            actual = shifted.choose(automaton, probe)
            assert expected == actual
            if expected is None:
                break
            # Extend the probe deterministically along one outcome.
            next_state = sorted(
                expected.target.support, key=repr
            )[0]
            probe = probe.extend(expected.action, next_state)

    def test_excludes_foreign_adversaries(self, ring3):
        _, view = ring3
        schema = unit_time_schema(view)
        assert not schema.contains(FirstEnabledAdversary())

    def test_excludes_other_views(self, ring3):
        _, view = ring3
        other_view = lr.LRProcessView(3)
        schema = unit_time_schema(view)
        adversary = RoundBasedAdversary(other_view, FifoRoundPolicy())
        assert not schema.contains(adversary)


class TestHashedRandomPolicy:
    def test_deterministic_in_history(self, ring3):
        automaton, view = ring3
        policy = HashedRandomRoundPolicy(3)
        adversary = RoundBasedAdversary(view, policy)
        start = lr.canonical_states(3)["all_flip"]
        first = adversary.choose(automaton, initial(start))
        second = adversary.choose(automaton, initial(start))
        assert first == second

    def test_different_seeds_diverge_somewhere(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["contended"]
        choices = set()
        for policy in seeded_policies(8):
            adversary = RoundBasedAdversary(view, policy)
            step = adversary.choose(automaton, initial(start))
            choices.add(view.process_of(step.action))
        assert len(choices) > 1

    def test_digest_stable(self):
        fragment = initial("x").extend("a", "y")
        assert fragment_digest(1, fragment) == fragment_digest(1, fragment)
        assert fragment_digest(1, fragment) != fragment_digest(2, fragment)
        assert fragment_digest(1, fragment, "p") != fragment_digest(
            1, fragment, "q"
        )

    def test_is_valid_unit_time_member(self, ring3):
        automaton, view = ring3
        adversary = RoundBasedAdversary(view, HashedRandomRoundPolicy(5))
        start = lr.canonical_states(3)["all_flip"]
        fragment = run_steps(automaton, adversary, start, 60, seed=1)
        assert lr.lr_time_of(fragment.lstate) > 0
