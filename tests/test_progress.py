"""Live progress: the reporter, the pool hooks, and byte-identity.

The load-bearing invariant: ``--progress`` renders to stderr only, so
every report is byte-identical with progress on or off, across worker
counts and engines.  The matrix test at the bottom pins it.
"""

from __future__ import annotations

import io
import itertools

import pytest

from repro.cli import main
from repro.obs import progress


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def reporter(min_interval=0.0):
    clock = FakeClock()
    stream = io.StringIO()
    rep = progress.ProgressReporter(
        stream=stream, min_interval=min_interval, clock=clock
    )
    return rep, stream, clock


class TestReporter:
    def test_line_counts_and_rate(self):
        rep, stream, clock = reporter()
        rep.add_total(10)
        clock.now = 2.0
        for _ in range(4):
            rep.task_done()
        line = rep._line()
        assert "4/10 tasks" in line
        assert "2.0/s" in line
        assert "eta 3s" in line

    def test_retries_and_degradation_render(self):
        rep, stream, clock = reporter()
        rep.add_total(2)
        rep.task_retried()
        rep.pool_degraded()
        line = rep._line()
        assert "retries 1" in line
        assert "DEGRADED" in line

    def test_quarantine_counted_from_result_violation(self):
        class Outcome:
            violation = "distribution"

        class Clean:
            violation = None

        rep, stream, clock = reporter()
        rep.add_total(2)
        rep.task_done(Outcome())
        rep.task_done(Clean())
        assert rep.quarantined == 1
        assert "quarantined 1" in rep._line()

    def test_throttle_skips_interim_renders(self):
        rep, stream, clock = reporter(min_interval=1.0)
        rep.add_total(5)
        before = stream.getvalue()
        rep.task_done()  # within the interval: no write
        assert stream.getvalue() == before
        clock.now = 2.0
        rep.task_done()
        assert stream.getvalue() != before

    def test_close_terminates_the_line(self):
        rep, stream, clock = reporter()
        rep.add_total(1)
        rep.task_done()
        rep.close()
        assert stream.getvalue().endswith("\n")


class TestHooks:
    def test_hooks_are_noops_without_a_reporter(self):
        assert progress.active() is None
        progress.add_total(3)
        progress.task_done()
        progress.task_retried()
        progress.pool_degraded()
        assert progress.active() is None

    def test_reporting_installs_and_restores(self):
        rep, stream, clock = reporter()
        with progress.reporting(rep):
            assert progress.active() is rep
            progress.add_total(2)
            progress.task_done()
        assert progress.active() is None
        assert rep.done == 1
        assert stream.getvalue().endswith("\n")

    def test_reporting_restores_on_error(self):
        rep, stream, clock = reporter()
        with pytest.raises(RuntimeError):
            with progress.reporting(rep):
                raise RuntimeError("boom")
        assert progress.active() is None


class TestPoolFeedsProgress:
    def test_inline_run_counts_tasks(self):
        from repro.parallel.pool import run_tasks

        rep, stream, clock = reporter()
        with progress.reporting(rep):
            results = run_tasks(
                lambda context, task: task * 2, None, [1, 2, 3], workers=1
            )
        assert results == [2, 4, 6]
        assert rep.total == 3 and rep.done == 3

    def test_pooled_run_counts_tasks(self):
        from repro.parallel.pool import fork_available, run_tasks

        if not fork_available():
            pytest.skip("fork start method unavailable")
        rep, stream, clock = reporter()
        with progress.reporting(rep):
            results = run_tasks(
                _double, None, [1, 2, 3, 4], workers=2
            )
        assert results == [2, 4, 6, 8]
        assert rep.total == 4 and rep.done == 4


def _double(context, task):
    return task * 2


class TestCliByteIdentity:
    CHECK = ["check", "--prop", "A.14", "--json", "--samples", "4"]

    def run_stdout(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_progress_goes_to_stderr_only(self, capsys):
        code, out, err = self.run_stdout(
            [*self.CHECK, "--progress"], capsys
        )
        assert code == 0
        assert "tasks" in err
        assert "tasks" not in out

    def test_reports_identical_across_progress_workers_engines(
        self, capsys
    ):
        baseline_code, baseline, _ = self.run_stdout(self.CHECK, capsys)
        assert baseline_code == 0
        for flag, workers, engine in itertools.product(
            ((), ("--progress",)),
            ("1", "4"),
            ("tree", "compiled", "auto"),
        ):
            argv = [
                *self.CHECK, *flag,
                "--workers", workers, "--engine", engine,
            ]
            code, out, err = self.run_stdout(argv, capsys)
            assert code == baseline_code, argv
            assert out == baseline, argv
            if flag:
                assert "tasks" in err, argv

    def test_expected_time_identical_with_progress(self, capsys):
        base = ["expected-time", "--samples", "2"]
        code_a, out_a, _ = self.run_stdout(base, capsys)
        code_b, out_b, err = self.run_stdout(
            [*base, "--progress", "--workers", "4"], capsys
        )
        assert (code_a, out_a) == (code_b, out_b)
        assert "tasks" in err
