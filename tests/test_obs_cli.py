"""CLI-level tests for the instrumentation commands and flags."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.obs.sinks import read_jsonl


class TestParser:
    def test_stats_defaults(self):
        # --n parses as None and resolves to the model's default (3
        # for lr) at dispatch.
        args = build_parser().parse_args(["stats"])
        assert args.n is None and args.samples == 40
        assert args.trace_out is None

    def test_trace_out_accepted_everywhere(self):
        for command in ["prove", "verify", "appendix", "independence"]:
            args = build_parser().parse_args(
                [command, "--trace-out", "out.jsonl"]
            )
            assert args.trace_out == "out.jsonl"

    def test_trace_collects_inner_command(self):
        args = build_parser().parse_args(["trace", "prove"])
        assert args.rest == ["prove"]


class TestStats:
    def test_stats_smoke_on_ring_of_3(self, capsys):
        assert main(["stats", "--n", "3", "--samples", "4"]) == 0
        out = capsys.readouterr().out
        # Span tree with the experiment phases.
        assert "stats.run" in out
        assert "lr.check_leaf" in out
        assert "mdp.expected_time" in out
        # Metric tables: samples drawn, steps simulated, residuals.
        assert "verifier.samples" in out
        assert "sampler.steps" in out
        assert "mdp.expected_time.residual" in out
        assert "refuted statements: 0" in out

    def test_stats_trace_out_writes_parseable_jsonl(self, tmp_path, capsys):
        path = tmp_path / "stats.jsonl"
        assert main(
            ["stats", "--n", "3", "--samples", "4",
             "--trace-out", str(path)]
        ) == 0
        records = read_jsonl(path)
        types = {record["type"] for record in records}
        assert {"span", "counter", "histogram", "report"} <= types
        reports = [r for r in records if r["type"] == "report"]
        assert all(r["kind"] == "arrow_check" for r in reports)
        assert all(not r["refuted"] for r in reports)


class TestTrace:
    def test_trace_wraps_another_command(self, capsys):
        assert main(["trace", "prove"]) == 0
        out = capsys.readouterr().out
        # The inner command's own output is preserved...
        assert "T --13-->_1/8 C" in out
        # ...and the instrumentation report follows.
        assert "trace of 'repro prove'" in out
        assert "ledger.rule.compose" in out

    def test_trace_rejects_tracing_trace(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "stats"])

    def test_trace_out_flag_on_ordinary_command(self, tmp_path, capsys):
        path = tmp_path / "prove.jsonl"
        assert main(["prove", "--trace-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote" in out
        records = read_jsonl(path)
        counters = {
            record["name"]: record["value"]
            for record in records
            if record["type"] == "counter"
        }
        assert counters["ledger.rule.assume"] == 5

    def test_registry_restored_after_traced_run(self):
        from repro import obs

        main(["trace", "prove"])
        assert not obs.enabled()
