"""The durable verification job service: store, cache, workers, chaos.

The headline invariant under test: a served campaign's results are a
pure function of the submitted specs — byte-identical to direct CLI
runs, across worker counts and engines, and unchanged by crashes.
The chaos test SIGKILLs the whole ``repro serve`` process tree mid-
campaign, restarts it, and compares every cached report against an
undisturbed direct run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.cli import main
from repro.errors import (
    JobStoreCorruptionError,
    LeaseExpiredError,
    SupervisorCrashLoopError,
    VerificationError,
)
from repro.parallel import fork_available
from repro.parallel.faults import FaultPlan
from repro.service import (
    JobSpec,
    JobStore,
    ResultCache,
    cache_dir,
    resolve_store_dir,
)
from repro.service.store import STORE_FILE, fold_events
from repro.service.supervisor import CrashLoopDetector
from repro.service.worker import run_job_argv, worker_loop

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

#: A small but non-trivial verification job (sub-second).
QUICK = ("check", "--prop", "A.14", "--samples", "6", "--n", "3")


def _spec(*argv: str) -> JobSpec:
    return JobSpec.parse(argv or QUICK)


def _claim_with_faults(root: str, spec: str) -> None:
    """Fork target: one claim attempt under an armed fault plan."""
    JobStore(root, faults=FaultPlan.parse(spec)).claim("w-fault", 5.0)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# Job specs and scopes
# ----------------------------------------------------------------------


class TestJobSpec:
    def test_parse_round_trips_a_check_spec(self):
        spec = _spec()
        assert spec.command == "check"
        assert spec.argv == QUICK
        assert len(spec.scope) == 64

    def test_empty_spec_is_rejected(self):
        with pytest.raises(VerificationError, match="empty job spec"):
            JobSpec.parse([])

    def test_meta_commands_cannot_be_jobs(self):
        with pytest.raises(VerificationError, match="cannot be served"):
            JobSpec.parse(["serve", "--drain"])

    def test_parser_rejections_surface_at_submit_time(self):
        with pytest.raises(VerificationError, match="rejected"):
            JobSpec.parse(["check", "--no-such-flag"])

    def test_corpus_jobs_must_be_corpus_run(self):
        with pytest.raises(VerificationError, match="corpus run"):
            JobSpec.parse(["corpus", "list"])

    def test_scope_ignores_byte_identical_knobs(self):
        # --workers and --engine are excluded from the fingerprint by
        # the determinism contract, so these three jobs share one
        # cache entry.
        base = _spec()
        assert _spec(*QUICK, "--workers", "4").scope == base.scope
        assert _spec(*QUICK, "--engine", "batched").scope == base.scope

    def test_scope_tracks_result_affecting_knobs(self):
        assert _spec(*QUICK, "--seed", "9").scope != _spec().scope


# ----------------------------------------------------------------------
# The WAL store: fold, leases, recovery
# ----------------------------------------------------------------------


class TestJobStore:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        assert view.state == "pending"
        claimed = store.claim("w1", 10.0)
        assert claimed.job_id == view.job_id
        assert claimed.state == "running"
        store.complete(claimed.job_id, "w1", 0)
        final = store.jobs()[view.job_id]
        assert final.state == "completed" and final.exit_status == 0

    def test_claim_returns_none_when_nothing_claimable(self, tmp_path):
        store = JobStore(str(tmp_path), clock=FakeClock())
        assert store.claim("w1", 10.0) is None
        store.submit(_spec())
        store.claim("w1", 10.0)
        assert store.claim("w2", 10.0) is None  # lease still live

    def test_expired_lease_is_taken_over(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        clock.now = 20.0
        taken = store.claim("w2", 10.0)
        assert taken.job_id == view.job_id and taken.worker == "w2"

    def test_stale_holder_operations_raise_lease_expired(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        clock.now = 20.0
        store.claim("w2", 10.0)
        with pytest.raises(LeaseExpiredError):
            store.heartbeat(view.job_id, "w1", 10.0)
        with pytest.raises(LeaseExpiredError):
            store.complete(view.job_id, "w1", 0)

    def test_heartbeat_extends_a_held_lease(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        clock.now = 8.0
        store.heartbeat(view.job_id, "w1", 10.0)
        assert store.jobs()[view.job_id].lease_until == 18.0

    def test_failures_consume_attempts_then_fail(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec(), max_attempts=2)
        store.claim("w1", 10.0)
        store.fail(view.job_id, "w1", "boom")
        assert store.jobs()[view.job_id].state == "pending"
        store.claim("w1", 10.0)
        store.fail(view.job_id, "w1", "boom again")
        final = store.jobs()[view.job_id]
        assert final.state == "failed" and final.failures == 2

    def test_cancel_settles_a_pending_job(self, tmp_path):
        store = JobStore(str(tmp_path), clock=FakeClock())
        view = store.submit(_spec())
        assert store.cancel(view.job_id).state == "cancelled"
        with pytest.raises(VerificationError, match="no job matches"):
            store.cancel(view.job_id + "x")

    def test_cancel_of_completed_job_is_refused(self, tmp_path):
        store = JobStore(str(tmp_path), clock=FakeClock())
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        store.complete(view.job_id, "w1", 0)
        with pytest.raises(VerificationError, match="already completed"):
            store.cancel(view.job_id)

    def test_reclaim_returns_expired_leases_to_pending(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        assert store.reclaim_expired() == 0
        clock.now = 20.0
        assert store.reclaim_expired() == 1
        assert store.jobs()[view.job_id].state == "pending"

    def test_find_accepts_unique_prefixes(self, tmp_path):
        store = JobStore(str(tmp_path), clock=FakeClock())
        view = store.submit(_spec())
        assert store.find(view.job_id[:4]).job_id == view.job_id
        with pytest.raises(VerificationError, match="no job matches"):
            store.find("zzzz")

    def test_fold_is_a_pure_function_of_the_log(self, tmp_path):
        clock = FakeClock()
        store = JobStore(str(tmp_path), clock=clock)
        view = store.submit(_spec())
        store.claim("w1", 10.0)
        store.complete(view.job_id, "w1", 0)
        # A second handle on the same WAL folds the identical state.
        other = JobStore(str(tmp_path), clock=clock)
        assert {
            k: v.to_dict() for k, v in other.jobs().items()
        } == {k: v.to_dict() for k, v in store.jobs().items()}

    def test_torn_tail_is_tolerated_and_sealed(self, tmp_path):
        with JobStore(str(tmp_path), clock=FakeClock()) as store:
            view = store.submit(_spec())
        path = tmp_path / STORE_FILE
        with open(str(path), "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.write(b'{"event": "done", "jo')  # crash mid-append
        # A fresh process folds around the torn tail, and its first
        # append seals it so later records never merge into it.
        revived = JobStore(str(tmp_path), clock=FakeClock())
        assert revived.jobs()[view.job_id].state == "pending"
        revived.claim("w1", 10.0)
        assert revived.jobs()[view.job_id].state == "running"

    @needs_fork
    def test_successive_tears_land_as_separate_scars(self, tmp_path):
        # Each torn death must seal its predecessor's half-line before
        # writing its own (exactly what a real writer's reopen does).
        # Merged tears would freeze the loader's drop count — and with
        # it the torn fault's occurrence index, so every respawned
        # worker would redraw the identical tear and crash-loop.
        import multiprocessing

        from repro import durable_io
        from repro.service.store import TORN_EXIT

        root = str(tmp_path / "svc")
        with JobStore(root) as store:
            store.submit(_spec())
        ctx = multiprocessing.get_context("fork")
        for expected_scars in (1, 2, 3):
            process = ctx.Process(
                target=_claim_with_faults, args=(root, "torn=1.0,seed=1")
            )
            process.start()
            process.join()
            assert process.exitcode == TORN_EXIT
            _, dropped = durable_io.load_jsonl(
                os.path.join(root, STORE_FILE), tolerate="all"
            )
            assert dropped == expected_scars

    def test_unknown_event_is_corruption(self, tmp_path):
        from repro import durable_io

        durable_io.append_json_line(
            str(tmp_path / STORE_FILE),
            {"event": "gossip", "job": "j", "at": 0.0},
        )
        with pytest.raises(JobStoreCorruptionError, match="gossip"):
            JobStore(str(tmp_path)).jobs()

    def test_wrong_shaped_event_is_corruption(self, tmp_path):
        from repro import durable_io

        durable_io.append_json_line(
            str(tmp_path / STORE_FILE),
            {"event": "claim", "job": "j", "at": "yesterday",
             "worker": "w", "lease_until": 1.0},
        )
        with pytest.raises(JobStoreCorruptionError, match="at"):
            JobStore(str(tmp_path)).jobs()

    def test_fold_ignores_events_for_unknown_jobs(self):
        jobs = fold_events([
            {"event": "done", "job": "ghost", "worker": "w", "at": 1.0,
             "exit_status": 0, "cached": False},
        ])
        assert jobs == {}


# ----------------------------------------------------------------------
# The result cache
# ----------------------------------------------------------------------


class TestResultCache:
    def test_round_trip_and_hit_metrics(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payload = {"exit_status": 0, "stdout": "report\n"}
        with obs.recording() as registry:
            assert cache.get("a" * 64) is None
            cache.put("a" * 64, payload)
            assert cache.get("a" * 64) == payload
        counters = registry.metrics.snapshot()["counters"]
        assert counters["service.cache.misses"] == 1
        assert counters["service.cache.hits"] == 1

    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scope = "b" * 64
        cache.put(scope, {"exit_status": 0, "stdout": "x"})
        path = cache.path_for(scope)
        record = json.loads(open(path).read())
        record["payload"]["stdout"] = "tampered"
        with open(path, "w") as handle:
            json.dump(record, handle)
        with obs.recording() as registry:
            assert cache.get(scope) is None
        counters = registry.metrics.snapshot()["counters"]
        assert counters["service.cache.corrupt"] == 1
        assert not os.path.exists(path)

    def test_undecodable_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        scope = "c" * 64
        with open(cache.path_for(scope), "w") as handle:
            handle.write("not json")
        with obs.recording():
            assert cache.get(scope) is None
        assert not os.path.exists(cache.path_for(scope))

    def test_cache_fault_injection_forces_reverification(self, tmp_path):
        faults = FaultPlan.parse("cache=1.0,seed=3")
        cache = ResultCache(str(tmp_path), faults=faults)
        scope = "d" * 64
        cache.put(scope, {"exit_status": 0, "stdout": "x"})
        with obs.recording() as registry:
            assert cache.get(scope) is None  # corrupted on write
        counters = registry.metrics.snapshot()["counters"]
        assert counters["service.cache.corrupt"] == 1


# ----------------------------------------------------------------------
# Fault grammar
# ----------------------------------------------------------------------


class TestServiceFaults:
    def test_parse_accepts_service_fields(self):
        plan = FaultPlan.parse("kill=0.5,steal=0.25,torn=0.1,cache=1.0")
        assert (plan.kill, plan.steal, plan.torn, plan.cache) == (
            0.5, 0.25, 0.1, 1.0,
        )

    def test_decisions_are_deterministic_in_identity(self):
        plan = FaultPlan.parse("kill=0.5,seed=7")
        first = [plan.decide_service("kill", "job", i) for i in range(32)]
        again = [plan.decide_service("kill", "job", i) for i in range(32)]
        assert first == again
        assert any(first) and not all(first)

    def test_unknown_service_kind_is_rejected(self):
        plan = FaultPlan.parse("kill=1.0")
        with pytest.raises(VerificationError, match="unknown"):
            plan.decide_service("meteor", "job", 0)


# ----------------------------------------------------------------------
# The worker loop (in-process, no forks)
# ----------------------------------------------------------------------


class TestWorkerLoop:
    def _serve_inline(self, tmp_path, run=run_job_argv):
        store = JobStore(str(tmp_path / "svc"))
        cache = ResultCache(str(tmp_path / "svc" / "cache"))
        summary = worker_loop(
            store, cache, worker_id="inline", drain=True,
            lease_seconds=30.0, poll_seconds=0.01, run=run,
        )
        return store, cache, summary

    def test_drain_executes_every_pending_job(self, tmp_path):
        store = JobStore(str(tmp_path / "svc"))
        store.submit(_spec())
        _, _, summary = self._serve_inline(tmp_path)
        assert summary["executed"] == 1 and summary["cache_hits"] == 0

    def test_second_submit_is_served_with_zero_work(self, tmp_path):
        store = JobStore(str(tmp_path / "svc"))
        store.submit(_spec())
        self._serve_inline(tmp_path)

        # Resubmit the identical spec; a run function that explodes
        # proves the job is served without any verification work.
        def forbidden(argv):
            raise AssertionError("cache miss: verification ran")

        store.submit(_spec())
        with obs.recording() as registry:
            _, _, summary = self._serve_inline(tmp_path, run=forbidden)
        counters = registry.metrics.snapshot()["counters"]
        assert summary == {
            "executed": 0, "cache_hits": 1, "abandoned": 0, "failed": 0,
        }
        assert counters["service.cache.hits"] == 1

    def test_cached_bytes_match_a_direct_run(self, tmp_path):
        code, direct = run_job_argv(QUICK)
        store = JobStore(str(tmp_path / "svc"))
        store.submit(_spec())
        _, cache, _ = self._serve_inline(tmp_path)
        hit = cache.get(_spec().scope)
        assert hit["stdout"] == direct
        assert hit["exit_status"] == code

    def test_failing_job_consumes_attempts(self, tmp_path):
        store = JobStore(str(tmp_path / "svc"))
        view = store.submit(_spec(), max_attempts=2)

        def blow_up(argv):
            raise RuntimeError("模型 exploded")

        _, _, summary = self._serve_inline(tmp_path, run=blow_up)
        assert summary["failed"] == 2
        final = JobStore(str(tmp_path / "svc")).jobs()[view.job_id]
        assert final.state == "failed"
        assert "exploded" in final.error


class TestCrashLoopDetector:
    def test_young_unclean_exits_trip_the_detector(self):
        detector = CrashLoopDetector(max_restarts=2, healthy_seconds=5.0)
        assert detector.record_exit(0, lifetime=0.1, clean=False) == 1
        assert detector.record_exit(0, lifetime=0.1, clean=False) == 2
        with pytest.raises(SupervisorCrashLoopError, match="crash-loop"):
            detector.record_exit(0, lifetime=0.1, clean=False)

    def test_clean_or_long_lived_exits_reset_the_streak(self):
        detector = CrashLoopDetector(max_restarts=1, healthy_seconds=5.0)
        detector.record_exit(0, lifetime=0.1, clean=False)
        assert detector.record_exit(0, lifetime=9.0, clean=False) == 0
        detector.record_exit(0, lifetime=0.1, clean=False)
        assert detector.record_exit(0, lifetime=0.1, clean=True) == 0

    def test_streaks_are_per_slot(self):
        detector = CrashLoopDetector(max_restarts=1, healthy_seconds=5.0)
        detector.record_exit(0, lifetime=0.1, clean=False)
        assert detector.record_exit(1, lifetime=0.1, clean=False) == 1


# ----------------------------------------------------------------------
# CLI surface: submit / jobs / serve
# ----------------------------------------------------------------------


class TestServiceCLI:
    def run_cli(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_submit_prints_job_and_scope(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["submit", "--store", str(tmp_path), "--", *QUICK], capsys
        )
        assert code == 0
        assert "submitted 0001-" in out

    def test_submit_json_output(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["submit", "--store", str(tmp_path), "--json", "--", *QUICK],
            capsys,
        )
        assert code == 0
        record = json.loads(out)
        assert record["state"] == "pending"
        assert record["argv"] == list(QUICK)

    def test_submit_rejects_bad_specs_with_usage_exit(
        self, capsys, tmp_path
    ):
        code, _, err = self.run_cli(
            ["submit", "--store", str(tmp_path), "--", "serve"], capsys
        )
        assert code == 2
        assert "cannot be served" in err

    def test_jobs_list_and_show_and_cancel(self, capsys, tmp_path):
        self.run_cli(
            ["submit", "--store", str(tmp_path), "--", *QUICK], capsys
        )
        code, out, _ = self.run_cli(
            ["jobs", "list", "--store", str(tmp_path)], capsys
        )
        assert code == 0 and "pending" in out
        code, out, _ = self.run_cli(
            ["jobs", "show", "--store", str(tmp_path), "0001"], capsys
        )
        assert code == 0 and "pending" in out
        code, out, _ = self.run_cli(
            ["jobs", "cancel", "--store", str(tmp_path), "0001"], capsys
        )
        assert code == 0
        code, out, _ = self.run_cli(
            ["jobs", "list", "--store", str(tmp_path), "--json"], capsys
        )
        assert json.loads(out)[0]["state"] == "cancelled"

    def test_jobs_list_empty_store(self, capsys, tmp_path):
        code, out, _ = self.run_cli(
            ["jobs", "list", "--store", str(tmp_path)], capsys
        )
        assert code == 0 and "none" in out

    def test_store_flag_falls_back_to_env_then_default(self, monkeypatch):
        assert resolve_store_dir("/x") == "/x"
        monkeypatch.setenv("REPRO_SERVICE_DIR", "/y")
        assert resolve_store_dir(None) == "/y"
        monkeypatch.delenv("REPRO_SERVICE_DIR")
        assert resolve_store_dir(None) == os.path.join(
            ".repro", "service"
        )


# ----------------------------------------------------------------------
# Served campaigns: end-to-end, faults, chaos  (fork required)
# ----------------------------------------------------------------------


#: The campaign used by the end-to-end and chaos tests: distinct
#: scopes, sized so a mid-campaign SIGKILL has work left to destroy.
CAMPAIGN = (
    ("check", "--prop", "A.14", "--samples", "6", "--n", "3"),
    ("check", "--prop", "A.14", "--samples", "30", "--n", "4"),
    ("check", "--prop", "A.14", "--samples", "60", "--n", "4"),
    ("check", "--prop", "A.14", "--samples", "90", "--n", "4"),
)


def _direct_outputs():
    return {argv: run_job_argv(argv) for argv in CAMPAIGN}


def _submit_campaign(store_root):
    store = JobStore(str(store_root))
    for argv in CAMPAIGN:
        store.submit(JobSpec.parse(argv))
    store.close()


def _assert_campaign_bytes(store_root, direct):
    cache = ResultCache(cache_dir(str(store_root)))
    for argv, (code, stdout) in direct.items():
        hit = cache.get(JobSpec.parse(argv).scope)
        assert hit is not None, f"no cached result for {argv}"
        assert hit["stdout"] == stdout, f"bytes diverge for {argv}"
        assert hit["exit_status"] == code
    store = JobStore(str(store_root))
    assert all(
        view.state == "completed" and view.exit_status == 0
        for view in store.jobs().values()
    )


@needs_fork
class TestServedCampaigns:
    @pytest.fixture(scope="class")
    def direct(self):
        return _direct_outputs()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_drained_serve_matches_direct_bytes(
        self, tmp_path, capsys, direct, workers
    ):
        store_root = tmp_path / "svc"
        _submit_campaign(store_root)
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--workers", str(workers), "--poll", "0.05",
        ])
        capsys.readouterr()
        assert code == 0
        _assert_campaign_bytes(store_root, direct)

    def test_engine_variants_share_one_cached_result(
        self, tmp_path, capsys, direct
    ):
        store_root = tmp_path / "svc"
        store = JobStore(str(store_root))
        base = CAMPAIGN[0]
        store.submit(JobSpec.parse(base + ("--engine", "tree")))
        store.submit(JobSpec.parse(base + ("--engine", "batched")))
        store.close()
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--poll", "0.05", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        # Same scope: one executed, one served from cache — and the
        # bytes match the engine-default direct run.
        assert summary["completed_this_run"] == 2
        assert summary["served_from_cache"] == 1
        cache = ResultCache(cache_dir(str(store_root)))
        hit = cache.get(JobSpec.parse(base).scope)
        assert hit["stdout"] == direct[base][1]

    def test_resubmitted_campaign_is_served_entirely_from_cache(
        self, tmp_path, capsys, direct
    ):
        store_root = tmp_path / "svc"
        _submit_campaign(store_root)
        main([
            "serve", "--store", str(store_root), "--drain",
            "--poll", "0.05",
        ])
        capsys.readouterr()
        _submit_campaign(store_root)
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--poll", "0.05", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        summary = json.loads(out)
        assert summary["completed_this_run"] == len(CAMPAIGN)
        assert summary["served_from_cache"] == len(CAMPAIGN)
        assert summary["executed"] == 0

    def test_worker_kill_and_torn_wal_faults_recover_byte_identical(
        self, tmp_path, capsys, direct
    ):
        # Deterministic chaos: the first claim of each job kills the
        # worker (after possibly tearing a WAL write); the supervisor
        # restarts workers and leases expire, so every job still
        # completes — with byte-identical reports.
        store_root = tmp_path / "svc"
        _submit_campaign(store_root)
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--workers", "2", "--lease", "0.5", "--poll", "0.05",
            "--backoff", "0.05", "--max-restarts", "50",
            "--inject-faults", "kill=0.4,torn=0.2,seed=11",
        ])
        capsys.readouterr()
        assert code == 0
        _assert_campaign_bytes(store_root, direct)

    def test_sigkill_of_serve_tree_mid_campaign_resumes_byte_identical(
        self, tmp_path, capsys, direct
    ):
        store_root = tmp_path / "svc"
        _submit_campaign(store_root)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--store", str(store_root), "--drain", "--workers", "2",
             "--lease", "2", "--poll", "0.05"],
            env=env, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the campaign is genuinely mid-flight: at
            # least one job done, at least one claim outstanding.
            deadline = time.monotonic() + 60
            store = JobStore(str(store_root))
            while time.monotonic() < deadline:
                events = store.event_log()
                done = sum(1 for e in events if e["event"] == "done")
                if done >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign never made progress")
            assert done < len(CAMPAIGN), "campaign finished too fast"
        finally:
            # kill -9 the supervisor *and* its workers, mid-job.
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait()

        # Restart the campaign: the fold reconstructs the queue, the
        # dead workers' leases expire and are taken over, and the
        # final reports are byte-identical to undisturbed runs.
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--workers", "2", "--lease", "2", "--poll", "0.05",
        ])
        capsys.readouterr()
        assert code == 0
        _assert_campaign_bytes(store_root, direct)

    def test_crash_looping_workers_abort_with_exit_3(
        self, tmp_path, capsys
    ):
        store_root = tmp_path / "svc"
        store = JobStore(str(store_root))
        store.submit(_spec())
        store.close()
        code = main([
            "serve", "--store", str(store_root), "--drain",
            "--lease", "0.2", "--poll", "0.05", "--backoff", "0.02",
            "--max-restarts", "1", "--healthy-seconds", "30",
            "--inject-faults", "kill=1.0,seed=5",
        ])
        err = capsys.readouterr().err
        assert code == 3
        assert "crash-loop" in err


class TestExitEpilogMentionsService:
    def test_exit_status_3_documents_the_service(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "job service" in out

    def test_serve_validates_fault_spec_up_front(self, capsys, tmp_path):
        code = main([
            "serve", "--store", str(tmp_path), "--drain",
            "--inject-faults", "sharks=1.0",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "sharks" in err

    def test_corpus_layer_maps_service_errors_to_infra_exit(self):
        from repro.corpus import runner
        from repro.corpus.cases import lease_expiry_case

        assert runner.EXIT_POOL == 3
        cls = runner.classify_service(lease_expiry_case())
        assert cls.status == "error"
        assert cls.detail == "LeaseExpiredError"
        assert cls.exit_status == 3
