"""Unit tests for exact extremal expected hitting times."""

from __future__ import annotations

import random

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.errors import VerificationError
from repro.mdp.expected_time import extremal_expected_time_rounds


def strip(state):
    return state.untimed()


@pytest.fixture(scope="module")
def ring3():
    return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)


class TestBasics:
    def test_target_at_start_is_zero(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["pre_critical"]
        value = extremal_expected_time_rounds(
            automaton, view, lr.in_pre_critical, start, strip
        )
        assert value == 0.0

    def test_deterministic_one_round(self, ring3):
        automaton, view = ring3
        # A pre-critical process fires crit during round 1: time-to-C is
        # 0 rounds completed... the crit step happens before any time
        # passage, so the expected number of completed rounds is 0.
        start = lr.canonical_states(3)["pre_critical"]
        value = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, start, strip
        )
        assert value == 0.0

    def test_min_leq_max(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["one_trying"]
        worst = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, start, strip, maximise=True
        )
        best = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, start, strip, maximise=False
        )
        assert best <= worst

    def test_divergence_detected(self):
        # With an unreachable target the value grows without bound; the
        # iteration reports failure (either divergence or
        # non-convergence) instead of looping forever.  A two-process
        # ordered ring keeps the node space tiny.
        from repro.algorithms import ordered as od

        automaton = od.ordered_automaton(2)
        view = od.OrderedProcessView(2)
        start = od.ordered_initial_state(2)
        with pytest.raises(VerificationError):
            extremal_expected_time_rounds(
                automaton, view, lambda s: False, start,
                lambda s: s.untimed(), max_iterations=300,
            )


class TestPaperBound:
    def test_worst_case_expected_time_below_63(self, ring3):
        """The paper's 63 dominates the exact subclass optimum from
        every canonical and sampled trying state (n = 3)."""
        automaton, view = ring3
        starts = [
            lr.canonical_states(3)["one_trying"],
            lr.canonical_states(3)["with_exiter"],
        ]
        starts += lr.sample_states_in(lr.T_CLASS, 3, 2, random.Random(0))
        for start in starts:
            value = extremal_expected_time_rounds(
                automaton, view, lr.in_critical, start, strip,
                maximise=True, tolerance=1e-7,
            )
            assert value <= 63.0, (start, value)

    def test_known_exact_values(self, ring3):
        automaton, view = ring3
        states = lr.canonical_states(3)
        worst_all_flip = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, states["all_flip"], strip
        )
        # 13/3: flip+grab round, then the second-check lottery.
        assert worst_all_flip == pytest.approx(13 / 3, abs=1e-6)
        worst_contended = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, states["contended"], strip
        )
        assert worst_contended == pytest.approx(2.0, abs=1e-6)

    def test_progress_is_almost_sure(self, ring3):
        """Convergence of the worst-case expectation certifies the
        Zuck-Pnueli progress property the paper refines: no
        round-synchronous scheduler can starve the critical region."""
        automaton, view = ring3
        value = extremal_expected_time_rounds(
            automaton, view, lr.in_critical,
            lr.canonical_states(3)["all_flip"], strip, maximise=True,
        )
        assert value < float("inf")
