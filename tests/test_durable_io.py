"""The durable-io helper: fsynced appends, torn tails, atomic writes.

Every append-only store in the repository (checkpoints, manifests,
corpus files, the job-service WAL) rides on these primitives, so the
crash-damage semantics are pinned here once: a torn tail is repaired
on reopen and tolerated on read, a whole undecodable line is an error
for strict readers and a counted drop for lenient ones, and
whole-file writes never expose a mixture of old and new bytes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import durable_io


def _raw_write(path, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)


class TestDurableAppender:
    def test_appends_one_terminated_line_per_record(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with durable_io.DurableAppender(str(path)) as appender:
            appender.append_json({"n": 1})
            appender.append_json({"n": 2})
        assert path.read_text() == '{"n": 1}\n{"n": 2}\n'

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "log.jsonl"
        durable_io.append_json_line(str(path), {"ok": True})
        assert json.loads(path.read_text()) == {"ok": True}

    def test_reopen_seals_a_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'{"n": 1}\n{"half": tr')
        with durable_io.DurableAppender(str(path)) as appender:
            appender.append_json({"n": 2})
        lines = path.read_text().splitlines()
        # The torn record stays one line; the new record never merges
        # into it.
        assert lines == ['{"n": 1}', '{"half": tr', '{"n": 2}']

    def test_reopen_of_clean_file_adds_nothing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        durable_io.append_json_line(str(path), {"n": 1})
        durable_io.append_json_line(str(path), {"n": 2})
        assert path.read_text() == '{"n": 1}\n{"n": 2}\n'


class TestLoadJsonl:
    def test_missing_file_is_empty(self, tmp_path):
        records, dropped = durable_io.load_jsonl(
            str(tmp_path / "absent.jsonl")
        )
        assert records == [] and dropped == 0

    def test_returns_line_numbers_with_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'{"n": 1}\n\n{"n": 2}\n')
        records, dropped = durable_io.load_jsonl(str(path))
        assert records == [(1, {"n": 1}), (3, {"n": 2})]
        assert dropped == 0

    def test_tail_mode_drops_an_unterminated_final_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'{"n": 1}\n{"torn": ')
        records, dropped = durable_io.load_jsonl(
            str(path), tolerate="tail"
        )
        assert records == [(1, {"n": 1})]
        assert dropped == 1

    def test_tail_mode_raises_on_a_complete_undecodable_line(
        self, tmp_path
    ):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'{"n": 1}\nnot json\n')
        with pytest.raises(ValueError, match="log.jsonl:2"):
            durable_io.load_jsonl(str(path), tolerate="tail")

    def test_tail_mode_raises_on_interior_damage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'broken\n{"n": 2}\n{"torn": ')
        with pytest.raises(ValueError, match="log.jsonl:1"):
            durable_io.load_jsonl(str(path), tolerate="tail")

    def test_all_mode_drops_and_counts_every_bad_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _raw_write(path, b'broken\n{"n": 2}\n{"torn": ')
        records, dropped = durable_io.load_jsonl(
            str(path), tolerate="all"
        )
        assert records == [(2, {"n": 2})]
        assert dropped == 2

    def test_unknown_tolerate_mode_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="tolerate"):
            durable_io.load_jsonl(
                str(tmp_path / "x.jsonl"), tolerate="some"
            )


class TestAtomicWriteText:
    def test_replaces_content_completely(self, tmp_path):
        path = tmp_path / "entry.json"
        durable_io.atomic_write_text(str(path), "old\n")
        durable_io.atomic_write_text(str(path), "new\n")
        assert path.read_text() == "new\n"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        path = tmp_path / "entry.json"
        durable_io.atomic_write_text(str(path), "data\n")
        assert os.listdir(tmp_path) == ["entry.json"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "entry.json"
        durable_io.atomic_write_text(str(path), "data\n")
        assert path.read_text() == "data\n"
