"""Unit tests for the Proposition 4.2 machinery."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.coins import (
    FLIP_P,
    FLIP_Q,
    HEADS,
    TAILS,
    both_flip_adversary,
    never_flip_q_adversary,
    p_heads,
    peek_adversary,
    q_tails,
    two_coin_automaton,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import EventError
from repro.events.independence import (
    action_outcome_lower_bound,
    first_conjunction_claim,
    next_claim,
    proposition_4_2_claims,
)
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import exact_event_probability


@pytest.fixture
def automaton():
    return two_coin_automaton()


class TestActionOutcomeLowerBound:
    def test_fair_coin_bound_is_half(self, automaton):
        bound = action_outcome_lower_bound(
            automaton, FLIP_P, p_heads, automaton.states
        )
        assert bound == Fraction(1, 2)

    def test_unused_action_is_vacuous(self, automaton):
        bound = action_outcome_lower_bound(
            automaton, "missing", p_heads, automaton.states
        )
        assert bound == 1

    def test_impossible_outcome_bound_zero(self, automaton):
        bound = action_outcome_lower_bound(
            automaton, FLIP_P, lambda s: False, automaton.states
        )
        assert bound == 0

    def test_minimum_over_steps(self):
        # An automaton where the same action has different outcome
        # probabilities from different states: the bound is the min.
        from repro.automaton.automaton import ExplicitAutomaton
        from repro.automaton.signature import ActionSignature
        from repro.automaton.transition import Transition
        from repro.probability.space import FiniteDistribution

        auto = ExplicitAutomaton(
            ["a", "b", "win", "lose"],
            ["a"],
            ActionSignature(internal={"roll"}),
            [
                Transition(
                    "a", "roll",
                    FiniteDistribution(
                        {"win": Fraction(3, 4), "lose": Fraction(1, 4)}
                    ),
                ),
                Transition(
                    "b", "roll",
                    FiniteDistribution(
                        {"win": Fraction(1, 4), "lose": Fraction(3, 4)}
                    ),
                ),
            ],
        )
        bound = action_outcome_lower_bound(
            auto, "roll", lambda s: s == "win", auto.states
        )
        assert bound == Fraction(1, 4)


class TestClaims:
    def pairs(self):
        return [(FLIP_P, p_heads), (FLIP_Q, q_tails)]

    def test_first_conjunction_bound_is_product(self):
        claim = first_conjunction_claim(
            self.pairs(), [Fraction(1, 2), Fraction(1, 2)]
        )
        assert claim.lower_bound == Fraction(1, 4)
        assert claim.kind == "first-conjunction"

    def test_next_bound_is_minimum(self):
        claim = next_claim(self.pairs(), [Fraction(1, 2), Fraction(1, 3)])
        assert claim.lower_bound == Fraction(1, 3)
        assert claim.kind == "next-minimum"

    def test_duplicate_actions_rejected(self):
        with pytest.raises(EventError):
            first_conjunction_claim(
                [(FLIP_P, p_heads), (FLIP_P, q_tails)],
                [Fraction(1, 2), Fraction(1, 2)],
            )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(EventError):
            next_claim(self.pairs(), [Fraction(1, 2)])

    def test_empty_rejected(self):
        with pytest.raises(EventError):
            first_conjunction_claim([], [])

    def test_bad_bound_rejected(self):
        with pytest.raises(EventError):
            next_claim(self.pairs(), [Fraction(1, 2), Fraction(3, 2)])


class TestProposition42EndToEnd:
    def adversaries(self):
        return [
            both_flip_adversary(),
            peek_adversary(HEADS),
            peek_adversary(TAILS),
            never_flip_q_adversary(),
        ]

    def test_bounds_hold_under_every_adversary(self, automaton):
        first_claim, nxt_claim = proposition_4_2_claims(
            automaton,
            [(FLIP_P, p_heads), (FLIP_Q, q_tails)],
            automaton.states,
        )
        assert first_claim.lower_bound == Fraction(1, 4)
        assert nxt_claim.lower_bound == Fraction(1, 2)
        start = ExecutionFragment.initial((None, None))
        for adversary in self.adversaries():
            tree = ExecutionAutomaton(automaton, adversary, start)
            assert exact_event_probability(
                tree, first_claim.event, 4
            ) >= first_claim.lower_bound
            assert exact_event_probability(
                tree, nxt_claim.event, 4
            ) >= nxt_claim.lower_bound

    def test_next_event_tight_under_both_flip(self, automaton):
        # Under the both-flip adversary, P goes first, so next(...)
        # reduces to first(flip_p, H): probability exactly 1/2.
        _, nxt_claim = proposition_4_2_claims(
            automaton,
            [(FLIP_P, p_heads), (FLIP_Q, q_tails)],
            automaton.states,
        )
        tree = ExecutionAutomaton(
            automaton, both_flip_adversary(),
            ExecutionFragment.initial((None, None)),
        )
        assert exact_event_probability(
            tree, nxt_claim.event, 4
        ) == Fraction(1, 2)
