"""Unit tests for the arrow-statement verifiers."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.deterministic import FirstEnabledAdversary
from repro.errors import VerificationError
from repro.proofs.statements import ArrowStatement, StateClass
from repro.proofs.verifier import (
    check_arrow_by_sampling,
    check_arrow_exactly,
    measure_time_to_target,
)


def zero_time(state):
    return Fraction(0)


@pytest.fixture
def start_class():
    return StateClass("Start", lambda s: s == "start")


@pytest.fixture
def goal_class():
    return StateClass("Goal", lambda s: s == "goal")


class TestSamplingCheck:
    def statement(self, start_class, goal_class, p):
        # With the untimed clock nothing ever exceeds the bound, so the
        # event degenerates to "reach goal before the adversary halts";
        # FirstEnabledAdversary runs forever until the terminal goal.
        return ArrowStatement(start_class, goal_class, 0, p, "all")

    def test_consistent_statement_supported(
        self, coin_walk, start_class, goal_class
    ):
        statement = self.statement(start_class, goal_class, Fraction(1, 2))
        report = check_arrow_by_sampling(
            coin_walk,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            random.Random(0),
            samples_per_pair=150,
            max_steps=500,
        )
        assert not report.refuted
        assert report.min_estimate > 0.9
        assert report.worst.adversary_name == "first"

    def test_false_statement_refuted(self, coin_walk, start_class):
        never = StateClass("Never", lambda s: False)
        statement = ArrowStatement(start_class, never, 0, Fraction(1, 2), "all")
        report = check_arrow_by_sampling(
            coin_walk,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            random.Random(0),
            samples_per_pair=100,
            max_steps=50,
        )
        assert report.refuted
        assert not report.supported
        assert report.min_estimate == 0.0

    def test_start_state_must_lie_in_source(self, coin_walk, goal_class):
        statement = ArrowStatement(goal_class, goal_class, 0, 1, "all")
        with pytest.raises(VerificationError):
            check_arrow_by_sampling(
                coin_walk,
                statement,
                [("first", FirstEnabledAdversary())],
                ["start"],  # not in Goal
                zero_time,
                random.Random(0),
            )

    def test_empty_adversaries_rejected(self, coin_walk, start_class, goal_class):
        statement = self.statement(start_class, goal_class, 1)
        with pytest.raises(VerificationError):
            check_arrow_by_sampling(
                coin_walk, statement, [], ["start"], zero_time,
                random.Random(0),
            )

    def test_summary_line_mentions_verdict(
        self, coin_walk, start_class, goal_class
    ):
        statement = self.statement(start_class, goal_class, Fraction(1, 100))
        report = check_arrow_by_sampling(
            coin_walk,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            random.Random(0),
            samples_per_pair=200,
            max_steps=500,
        )
        line = report.summary_line()
        assert "first" in line and ("supported" in line or "consistent" in line)


class TestExactCheck:
    def test_exact_bounds_match_hand_computation(
        self, coin_walk, start_class
    ):
        middle = StateClass("Middle", lambda s: s == "middle")
        statement = ArrowStatement(
            start_class, middle, 0, Fraction(3, 4), "all"
        )
        report = check_arrow_exactly(
            coin_walk,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            max_steps=2,
        )
        # Within 2 tree steps: 1 - (1/2)^2 = 3/4 reaches middle.
        assert report.min_lower_bound == Fraction(3, 4)
        assert report.holds_for_family
        assert not report.refuted

    def test_refutation_via_upper_bound(self, coin_walk, start_class):
        never = StateClass("Never", lambda s: False)
        statement = ArrowStatement(start_class, never, 0, Fraction(1, 2), "all")
        from repro.adversary.deterministic import StoppingAdversary

        report = check_arrow_exactly(
            coin_walk,
            statement,
            [("stop", StoppingAdversary(FirstEnabledAdversary(), 3))],
            ["start"],
            zero_time,
            max_steps=10,
        )
        assert report.refuted


class TestTimeToTarget:
    def test_reports_all_samples_reached(self, coin_walk):
        report = measure_time_to_target(
            coin_walk,
            "first",
            FirstEnabledAdversary(),
            ["start"],
            lambda s: s == "goal",
            zero_time,
            random.Random(0),
            samples=20,
            max_steps=5_000,
        )
        assert report.unreached == 0
        assert len(report.times) == 20
        assert report.mean == 0.0  # untimed clock
        assert report.maximum == 0

    def test_unreached_counted(self, coin_walk):
        report = measure_time_to_target(
            coin_walk,
            "first",
            FirstEnabledAdversary(),
            ["start"],
            lambda s: False,
            zero_time,
            random.Random(0),
            samples=5,
            max_steps=20,
        )
        assert report.unreached == 5
        with pytest.raises(VerificationError):
            _ = report.mean

    def test_positive_sample_count_required(self, coin_walk):
        with pytest.raises(VerificationError):
            measure_time_to_target(
                coin_walk, "first", FirstEnabledAdversary(), ["start"],
                lambda s: True, zero_time, random.Random(0), samples=0,
            )
