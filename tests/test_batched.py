"""Batched-engine, symmetry-quotient, and compiled-correctness suite.

Three concerns share these fixtures:

* regression tests for the compiled-engine correctness fixes (the
  unbounded time-bound crash, the ambiguous ``==``-match in
  ``_match_step``, the unchecked quotient-invariance of ``flags``);
* the cross-backend byte-identity matrix — ``check`` / ``verify`` /
  ``expected-time`` stdout must be identical for
  tree == compiled == batched(pure) == batched(numpy) across
  workers x guards;
* the ring-rotation quotient: golden quotiented n=3 counts and the
  n=5 exact-reach feasibility smoke test.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup
from repro.adversary.unit_time import (
    HALT,
    MarkovRoundPolicy,
    ProcessView,
    RoundBasedAdversary,
)
from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.cli import main
from repro.contracts import OFF_CONFIG, STRICT, WARN, GuardConfig
from repro.errors import QuotientInvarianceError
from repro.parallel import fork_available
from repro.parallel.seeds import rng_from_seed
from repro.statespace import (
    BatchedEngine,
    UniformSource,
    build_engine,
    compile_adversary,
    compile_space,
)
from repro.statespace import np_backend

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


@pytest.fixture(scope="module")
def setup3() -> LRExperimentSetup:
    return LRExperimentSetup.build(3, random_seeds=(1,))


@pytest.fixture(scope="module")
def statement():
    return lr.lehmann_rabin_proof().final_statement


def build_for(setup, statement, *, time_bound="statement", **kwargs):
    bound = statement.time_bound if time_bound == "statement" else time_bound
    return build_engine(
        setup.automaton,
        setup.adversaries,
        tuple(lr.canonical_states(setup.n).values()),
        statement.target.contains,
        lr.lr_time_of,
        bound,
        200,
        spec=setup.space_spec(),
        **kwargs,
    )


class TestUnboundedTimeBound:
    """Regression: a bound-free check must not crash the compiled paths.

    ``CompiledEngine`` compared ``elapsed > bound`` with
    ``self._bound = None`` whenever the check carried no time bound — a
    ``TypeError`` on the first sampled step (and in the exact DP).
    """

    def test_compiled_sample_without_bound(self, setup3, statement):
        compiled = build_for(
            setup3, statement, time_bound=None, engine="compiled"
        )
        tree = build_for(setup3, statement, time_bound=None, engine="tree")
        for seed in (0, 1, 2):
            got = compiled.sample(0, 0, rng_from_seed(seed))
            want = tree.sample(0, 0, rng_from_seed(seed))
            assert (got.verdict, got.steps) == (want.verdict, want.steps)

    def test_compiled_exact_reach_without_bound(self, setup3, statement):
        compiled = build_for(
            setup3, statement, time_bound=None, engine="compiled"
        )
        tree = build_for(setup3, statement, time_bound=None, engine="tree")
        got = compiled.exact_reach(0, 0, 40)
        want = tree.exact_reach(0, 0, 40)
        assert (got.lower, got.upper) == (want.lower, want.upper)


# ---------------------------------------------------------------------------
# Ambiguous ``==`` matches in the adversary product
# ---------------------------------------------------------------------------


class _OneProcessView(ProcessView):
    """A single process, obligated only in the start state ``"a"``."""

    @property
    def processes(self):
        return ("p",)

    def ready(self, state):
        return frozenset(("p",)) if state == "a" else frozenset()

    def process_of(self, action):
        return "p"

    def time_of(self, state):
        return Fraction(0)


class _FreshEqualMove(MarkovRoundPolicy):
    """Schedules a *fresh* transition object equal to the tabulated ones."""

    def markov_move(self, automaton, state, pending, view, rounds):
        if not pending:
            return HALT
        return Transition.deterministic("a", "go", "b")


def _ambiguous_automaton():
    """Two distinct-but-``==`` transitions enabled in the start state."""
    return ExplicitAutomaton(
        states=("a", "b"),
        start_states=("a",),
        signature=ActionSignature(internal=frozenset(("go",))),
        steps=(
            Transition.deterministic("a", "go", "b"),
            Transition.deterministic("a", "go", "b"),
        ),
    )


class TestAmbiguousMatch:
    """Regression: ``_match_step`` silently took the first ``==`` match.

    With two distinct enabled transitions comparing equal, the compiled
    product could tabulate a different step than the tree walk replays;
    the compile must refuse (return ``None``) so the pair samples
    through the tree.
    """

    def test_ambiguous_adversary_does_not_compile(self):
        automaton = _ambiguous_automaton()
        space = compile_space(automaton, ("a",))
        adversary = RoundBasedAdversary(_OneProcessView(), _FreshEqualMove())
        assert compile_adversary(space, adversary, ("a",), max_nodes=64) is None

    def test_unambiguous_adversary_still_compiles(self):
        automaton = ExplicitAutomaton(
            states=("a", "b"),
            start_states=("a",),
            signature=ActionSignature(internal=frozenset(("go",))),
            steps=(Transition.deterministic("a", "go", "b"),),
        )
        space = compile_space(automaton, ("a",))
        adversary = RoundBasedAdversary(_OneProcessView(), _FreshEqualMove())
        table = compile_adversary(space, adversary, ("a",), max_nodes=64)
        assert table is not None
        assert table.choice_targets[table.start_nodes[0]] is not None


# ---------------------------------------------------------------------------
# Batched sampling: uniform sources and engine-level byte identity
# ---------------------------------------------------------------------------


class TestUniformSource:
    @staticmethod
    def _reference(seed, count):
        rng = rng_from_seed(seed)
        return [rng.random() for _ in range(count)]

    def test_numpy_block_matches_python_stream(self):
        if not np_backend.available():
            pytest.skip("numpy not installed")
        reference = self._reference(9, 3000)
        source = UniformSource(
            rng_from_seed(9),
            block=128,
            bulk=np_backend.make_bulk(rng_from_seed(9)),
        )
        drawn = []
        while len(drawn) < 3000:
            drawn.extend(source.refill())
        assert drawn[:3000] == reference

    def test_pure_block_matches_python_stream(self):
        reference = self._reference(9, 300)
        source = UniformSource(rng_from_seed(9), block=300)
        assert source.refill() == reference

    def test_skip_discards_exactly(self):
        reference = self._reference(4, 500)
        source = UniformSource(rng_from_seed(4), block=100)
        data = source.refill()
        first = data[0]
        source.pos = 1
        source.skip(250)  # crosses two block boundaries
        data = source.refill()
        assert first == reference[0]
        assert data[0] == reference[251]


class TestBatchedByteIdentity:
    """Engine API level: batched(pure) == batched(numpy) == compiled."""

    def _engines(self, setup3, statement):
        batched = build_for(setup3, statement, engine="batched")
        pure = BatchedEngine(
            batched.tree, batched.tables, batched.flags, force_pure=True
        )
        compiled = build_for(setup3, statement, engine="compiled")
        return compiled, batched, pure

    def test_sample_stream_identical(self, setup3, statement):
        compiled, batched, pure = self._engines(setup3, statement)
        for adversary_index in range(len(setup3.adversaries)):
            streams = []
            for engine in (compiled, batched, pure):
                rng = rng_from_seed(31 + adversary_index)
                streams.append([
                    (result.verdict, result.steps)
                    for result in (
                        engine.sample(adversary_index, 0, rng)
                        for _ in range(40)
                    )
                ])
            assert streams[0] == streams[1] == streams[2]

    def test_time_stream_identical(self, setup3, statement):
        compiled, batched, pure = self._engines(setup3, statement)
        for adversary_index in range(len(setup3.adversaries)):
            streams = []
            for engine in (compiled, batched, pure):
                rng = rng_from_seed(77 + adversary_index)
                streams.append([
                    engine.time_to_target(adversary_index, 0, rng)
                    for _ in range(25)
                ])
            assert streams[0] == streams[1] == streams[2]

    def test_batched_without_bound(self, setup3, statement):
        # The unbounded-time regression, on the flat walker too.
        batched = build_for(
            setup3, statement, time_bound=None, engine="batched"
        )
        tree = build_for(setup3, statement, time_bound=None, engine="tree")
        for seed in (0, 1, 2):
            got = batched.sample(0, 0, rng_from_seed(seed))
            want = tree.sample(0, 0, rng_from_seed(seed))
            assert (got.verdict, got.steps) == (want.verdict, want.steps)

    def test_numpy_absent_machine_takes_pure_path(
        self, setup3, statement, monkeypatch
    ):
        # A machine without numpy: available() is False and make_bulk
        # degrades to None.  Both the implicit fallback under
        # --engine batched and the explicit batched-pure engine name
        # must build and match the tree walk byte for byte.
        monkeypatch.setattr(np_backend, "available", lambda: False)
        monkeypatch.setattr(np_backend, "make_bulk", lambda rng: None)
        tree = build_for(setup3, statement, engine="tree")
        batched = build_for(setup3, statement, engine="batched")
        pure = build_for(setup3, statement, engine="batched-pure")
        for seed in (0, 1, 2):
            want = tree.sample(0, 0, rng_from_seed(seed))
            for engine in (batched, pure):
                got = engine.sample(0, 0, rng_from_seed(seed))
                assert (got.verdict, got.steps) == (
                    want.verdict, want.steps
                )

    def test_flat_chain_arrays_are_consistent(self, setup3, statement):
        batched = build_for(setup3, statement, engine="batched")
        flats = [flat for flat in batched.flat_tables if flat is not None]
        assert flats, "no adversary flattened"
        for flat in flats:
            assert len(flat.offsets) == flat.n_nodes + 1
            assert len(flat.targets) == len(flat.cum) == len(flat.ideltas)
            for node in range(flat.n_nodes):
                run = flat.skip_steps[node]
                if not run:
                    continue
                # Replaying the run stepwise must land on skip_to with
                # the memoised total and cross only single-outcome,
                # unflagged, non-halt interior nodes.
                cursor, total = node, 0
                for _ in range(run):
                    assert not flat.node_flag[cursor]
                    assert not flat.halt[cursor]
                    lo, hi = flat.offsets[cursor], flat.offsets[cursor + 1]
                    assert hi - lo == 1
                    total += flat.ideltas[lo]
                    cursor = flat.targets[lo]
                assert cursor == flat.skip_to[node]
                assert total == flat.skip_total[node]


CLI_MATRIX = [
    (workers, guards)
    for workers in (1, 4)
    for guards in ("off", "warn", "strict")
]

CLI_ENGINES = ("tree", "compiled", "batched", "auto")


def _run_cli(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


class TestCliBackendMatrix:
    """CLI stdout is byte-identical across every backend combination.

    ``batched-pure`` is exercised by disabling the numpy transplant via
    monkeypatch — fork-started workers inherit the patched module, so
    the pure path is pinned for parallel runs too.
    """

    @pytest.mark.parametrize("workers,guards", CLI_MATRIX)
    def test_check_matrix(self, capsys, monkeypatch, workers, guards):
        if workers > 1 and not fork_available():
            pytest.skip("parallel backend needs the fork method")
        argv_tail = [
            "--n", "3", "--seed", "7", "--samples", "10",
            "--workers", str(workers), "--guards", guards,
            "--json", "--no-manifest",
        ]
        runs = {}
        for engine in CLI_ENGINES:
            runs[engine] = _run_cli(capsys, [
                "check", "--prop", "composed", "--engine", engine,
            ] + argv_tail)
        monkeypatch.setattr(np_backend, "make_bulk", lambda rng: None)
        runs["batched-pure"] = _run_cli(capsys, [
            "check", "--prop", "composed", "--engine", "batched",
        ] + argv_tail)
        baseline = runs["tree"]
        assert baseline[1].strip(), "empty stdout"
        for engine, run in runs.items():
            assert run == baseline, (
                f"{engine} diverged at workers={workers} guards={guards}"
            )

    @pytest.mark.parametrize("workers", (1, 4))
    def test_verify_identical(self, capsys, monkeypatch, workers):
        if workers > 1 and not fork_available():
            pytest.skip("parallel backend needs the fork method")
        argv_tail = [
            "--n", "3", "--seed", "3", "--samples", "4",
            "--workers", str(workers), "--no-manifest",
        ]
        runs = {}
        for engine in CLI_ENGINES:
            runs[engine] = _run_cli(
                capsys, ["verify", "--engine", engine] + argv_tail
            )
        monkeypatch.setattr(np_backend, "make_bulk", lambda rng: None)
        runs["batched-pure"] = _run_cli(
            capsys, ["verify", "--engine", "batched"] + argv_tail
        )
        baseline = runs["tree"]
        assert baseline[1].strip(), "empty stdout"
        for engine, run in runs.items():
            assert run == baseline, f"{engine} diverged at workers={workers}"

    @pytest.mark.parametrize("workers", (1, 4))
    def test_expected_time_identical(self, capsys, monkeypatch, workers):
        if workers > 1 and not fork_available():
            pytest.skip("parallel backend needs the fork method")
        argv_tail = [
            "--n", "3", "--seed", "2", "--samples", "3",
            "--workers", str(workers), "--no-manifest",
        ]
        runs = {}
        for engine in CLI_ENGINES:
            runs[engine] = _run_cli(
                capsys, ["expected-time", "--engine", engine] + argv_tail
            )
        monkeypatch.setattr(np_backend, "make_bulk", lambda rng: None)
        runs["batched-pure"] = _run_cli(
            capsys, ["expected-time", "--engine", "batched"] + argv_tail
        )
        baseline = runs["tree"]
        assert baseline[1].strip(), "empty stdout"
        for engine, run in runs.items():
            assert run == baseline, f"{engine} diverged at workers={workers}"


# ---------------------------------------------------------------------------
# Ring-symmetry quotient
# ---------------------------------------------------------------------------


def _comparable(state):
    """A state as plain comparable data (enums are not orderable)."""
    return (
        tuple((p.pc.value, p.u.value) for p in state.processes),
        state.resources,
    )


class TestRingSymmetryAlgebra:
    def _sample_states(self, n, count=25):
        states = list(lr.canonical_states(n).values())
        rng = rng_from_seed(1234)
        while count > 0:
            state = lr.random_consistent_state(n, rng)
            if state is not None:
                states.append(state)
                count -= 1
        return states

    def test_rotation_and_reflection_are_involutive_group_ops(self):
        for state in self._sample_states(3):
            assert state.rotated(state.n) == state
            assert state.reflected().reflected() == state
            assert state.rotated(1).rotated(state.n - 1) == state

    def test_canonical_maps_are_constant_on_orbits(self):
        for state in self._sample_states(3):
            canon = _comparable(lr.canonical_rotation(state))
            for member in lr.rotation_orbit(state):
                assert _comparable(lr.canonical_rotation(member)) == canon
            canon = _comparable(lr.canonical_symmetry(state))
            for member in lr.symmetry_orbit(state):
                assert _comparable(lr.canonical_symmetry(member)) == canon

    def test_region_predicates_are_quotient_invariant(self):
        # The tentpole's validity spot check: every region predicate
        # used as a target or flag is constant on dihedral orbits.
        predicates = (
            lr.in_critical,
            lr.in_trying,
            lr.in_good,
            lr.in_flip_ready,
            lr.in_pre_critical,
            lr.in_reduced_trying,
        )
        for state in self._sample_states(3):
            for predicate in predicates:
                value = predicate(state)
                assert all(
                    predicate(member) == value
                    for member in lr.symmetry_orbit(state)
                ), f"{predicate.__name__} not invariant on {state!r}"

    def test_reflection_is_a_bisimulation_on_samples(self):
        # Transitions of the mirrored state are exactly the mirrored
        # transitions: matching (weights, mirrored targets) multisets.
        automaton = lr.lehmann_rabin_automaton(3)

        def signature(source, mirror):
            rows = []
            for transition in automaton.transitions(source):
                outcomes = sorted(
                    (
                        weight,
                        _comparable(
                            target.reflected() if mirror else target
                        ),
                    )
                    for target, weight in transition.target.items()
                )
                rows.append(tuple(outcomes))
            rows.sort()
            return rows

        for state in self._sample_states(3, count=10):
            assert signature(state.reflected(), False) == signature(
                state, True
            )


class TestQuotientGoldenCounts:
    """The quotiented n=3 spaces are pinned exactly (~n and ~2n smaller)."""

    @pytest.fixture(scope="class")
    def starts3(self):
        return tuple(lr.canonical_states(3).values())

    def test_rotation_quotient_counts(self, starts3):
        automaton = lr.lehmann_rabin_automaton(3)
        space = compile_space(
            automaton, starts3, lr.rotation_space_spec()
        )
        assert space.n_states == 1454
        assert sum(len(steps) for steps in space.steps) == 6040

    def test_dihedral_quotient_counts(self, starts3):
        automaton = lr.lehmann_rabin_automaton(3)
        space = compile_space(
            automaton, starts3, lr.ring_symmetry_spec()
        )
        assert space.n_states == 727
        assert sum(len(steps) for steps in space.steps) == 3020


class TestQuotientInvarianceGuard:
    """``flags`` spot-checks predicates across sampled orbit members."""

    @pytest.fixture(scope="class")
    def quotient_space(self):
        automaton = lr.lehmann_rabin_automaton(3)
        starts = tuple(lr.canonical_states(3).values())
        return compile_space(automaton, starts, lr.ring_symmetry_spec())

    def _broken_predicate(self, state):
        # Depends on the representative's labelling, not the orbit:
        # process 0's counter is not preserved by rotation.
        return state.processes[0].pc is lr.PC.R

    def test_invariant_predicate_passes_strict(self, quotient_space):
        strict = GuardConfig(mode=STRICT).validate()
        flags = quotient_space.flags(lr.in_critical, strict)
        assert len(flags) == quotient_space.n_states

    def test_mutated_predicate_raises_in_strict(self, quotient_space):
        strict = GuardConfig(mode=STRICT).validate()
        with pytest.raises(QuotientInvarianceError):
            quotient_space.flags(self._broken_predicate, strict)

    def test_mutated_predicate_warns_and_returns_in_warn(self, quotient_space):
        warn = GuardConfig(mode=WARN).validate()
        flags = quotient_space.flags(self._broken_predicate, warn)
        assert len(flags) == quotient_space.n_states

    def test_mutated_predicate_is_silent_when_off(self, quotient_space):
        flags = quotient_space.flags(self._broken_predicate, OFF_CONFIG)
        assert len(flags) == quotient_space.n_states
        flags = quotient_space.flags(self._broken_predicate)
        assert len(flags) == quotient_space.n_states

    def test_strict_violation_falls_back_to_tree_in_build(self, statement):
        # End to end: a non-invariant target under the quotient must
        # not silently ship a compiled engine in auto mode.
        setup = LRExperimentSetup.build(3, random_seeds=())
        strict = GuardConfig(mode=STRICT).validate()
        engine = build_engine(
            setup.automaton,
            setup.adversaries,
            tuple(lr.canonical_states(3).values()),
            self._broken_predicate,
            lr.lr_time_of,
            statement.time_bound,
            200,
            engine="auto",
            spec=lr.ring_symmetry_spec(),
            guards=strict,
        )
        assert engine.name == "tree"


class TestQuotientFeasibilityN5:
    """The dihedral quotient fits n=5 inside the default state budget."""

    def test_exact_reach_completes_at_n5(self):
        setup = LRExperimentSetup.build(5, random_seeds=())
        fifo_only = [pair for pair in setup.adversaries if pair[0] == "fifo"]
        assert fifo_only, "fifo adversary missing"
        start = lr.initial_state(5)
        engine = build_engine(
            setup.automaton,
            fifo_only,
            (start,),
            lr.in_critical,
            lr.lr_time_of,
            None,
            60,
            engine="batched",  # compile-or-die: budget blowouts fail loudly
            spec=setup.symmetry_spec(),
        )
        assert isinstance(engine, BatchedEngine)
        space = engine.tables[0].space if engine.tables[0] else None
        assert space is not None, "fifo did not tabulate at n=5"
        # The quotiented space fits the 200k default budget (the raw
        # untimed space does not).
        assert space.n_states == 116_990
        bounds = engine.exact_reach(0, 0, 40)
        assert 0 <= bounds.lower <= bounds.upper <= 1
        assert bounds.upper > 0
