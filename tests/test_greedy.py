"""Unit tests for the greedy expectation-minimising adversary."""

from __future__ import annotations

import random

import pytest

from repro.adversary.greedy import GreedyMinimizerPolicy
from repro.algorithms.lehmann_rabin.adversaries import lr_progress_potential
from repro.adversary.unit_time import RoundBasedAdversary, unit_time_schema
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.state import PC, ProcessState, Side
from repro.automaton.execution import ExecutionFragment


@pytest.fixture
def setup3():
    return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)


def ring(*locals_):
    return lr.make_state(list(locals_))


R = lambda: ProcessState(PC.R, Side.LEFT)


class TestPotential:
    def test_critical_dominates(self):
        critical = ring(ProcessState(PC.C, Side.LEFT), R(), R())
        pre = ring(ProcessState(PC.P, Side.LEFT), R(), R())
        idle = ring(R(), R(), R())
        assert lr_progress_potential(critical) > lr_progress_potential(pre)
        assert lr_progress_potential(pre) > lr_progress_potential(idle)

    def test_free_second_resource_scores_higher(self):
        promising = ring(ProcessState(PC.S, Side.LEFT), R(), R())
        blocked = ring(
            ProcessState(PC.S, Side.LEFT),
            ProcessState(PC.D, Side.LEFT),
            R(),
        )
        # Process 0 at S<- wants Res_0 as its second resource; in
        # `blocked`, process 1 at D<- holds Res_0 (and contributes
        # nothing itself), so the state scores strictly lower.
        assert lr_progress_potential(promising) > lr_progress_potential(
            blocked
        )


class TestGreedyPolicy:
    def test_defers_the_promising_check(self, setup3):
        automaton, view = setup3
        # Process 0 at S<- with a free second resource (potential +8 if
        # it fires: it would enter P, +50); process 1 at F is the
        # cheaper move for the adversary.
        state = ring(
            ProcessState(PC.S, Side.LEFT),
            ProcessState(PC.F, Side.LEFT),
            R(),
        )
        adversary = RoundBasedAdversary(
            view, GreedyMinimizerPolicy(lr_progress_potential)
        )
        step = adversary.choose(automaton, ExecutionFragment.initial(state))
        assert view.process_of(step.action) == 1

    def test_fires_the_doomed_check_first(self, setup3):
        automaton, view = setup3
        # Process 0's second resource is taken (its check would fail,
        # lowering the potential); firing it is the adversary's best
        # move.
        state = ring(
            ProcessState(PC.S, Side.RIGHT),
            ProcessState(PC.F, Side.LEFT),
            ProcessState(PC.S, Side.RIGHT),
        )
        adversary = RoundBasedAdversary(
            view, GreedyMinimizerPolicy(lr_progress_potential)
        )
        step = adversary.choose(automaton, ExecutionFragment.initial(state))
        assert view.process_of(step.action) == 0

    def test_is_deterministic(self, setup3):
        automaton, view = setup3
        state = lr.canonical_states(3)["contended"]
        adversary = RoundBasedAdversary(
            view, GreedyMinimizerPolicy(lr_progress_potential)
        )
        fragment = ExecutionFragment.initial(state)
        assert adversary.choose(automaton, fragment) == adversary.choose(
            automaton, fragment
        )

    def test_is_unit_time_member(self, setup3):
        _, view = setup3
        schema = unit_time_schema(view)
        adversary = RoundBasedAdversary(
            view, GreedyMinimizerPolicy(lr_progress_potential)
        )
        assert schema.contains(adversary)

    def test_progress_still_occurs(self, setup3):
        """Even the directed spoiler cannot prevent progress."""
        from repro.execution.sampler import sample_time_until

        automaton, view = setup3
        adversary = RoundBasedAdversary(
            view, GreedyMinimizerPolicy(lr_progress_potential)
        )
        rng = random.Random(0)
        for _ in range(10):
            elapsed = sample_time_until(
                automaton,
                adversary,
                ExecutionFragment.initial(lr.canonical_states(3)["all_flip"]),
                lr.in_critical,
                lr.lr_time_of,
                rng,
                10_000,
            )
            assert elapsed is not None
            assert elapsed <= 63

    def test_in_family(self):
        view = lr.LRProcessView(3)
        names = [name for name, _ in lr.lr_adversary_family(view)]
        assert "greedy-min" in names
