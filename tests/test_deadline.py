"""Unit tests for the asynchronous deadline-driven adversaries."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.deadline import (
    StaggeredDeadlineAdversary,
    evenly_staggered,
)
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.execution import ExecutionFragment
from repro.errors import AdversaryError

QUANTUM = Fraction(1, 4)


@pytest.fixture
def ring3():
    automaton = lr.lehmann_rabin_automaton(3, time_increments=(QUANTUM,))
    return automaton, lr.LRProcessView(3)


class TestConstruction:
    def test_quantum_must_divide_one(self, ring3):
        _, view = ring3
        with pytest.raises(AdversaryError):
            StaggeredDeadlineAdversary(view, [0, 0, 0], Fraction(3, 7))

    def test_offsets_must_match_processes(self, ring3):
        _, view = ring3
        with pytest.raises(AdversaryError):
            StaggeredDeadlineAdversary(view, [Fraction(0)], QUANTUM)

    def test_offsets_must_be_on_grid(self, ring3):
        _, view = ring3
        with pytest.raises(AdversaryError):
            StaggeredDeadlineAdversary(
                view, [Fraction(1, 3), Fraction(0), Fraction(0)], QUANTUM
            )

    def test_offsets_must_be_in_unit_interval(self, ring3):
        _, view = ring3
        with pytest.raises(AdversaryError):
            StaggeredDeadlineAdversary(
                view, [Fraction(5, 4), Fraction(0), Fraction(0)], QUANTUM
            )

    def test_evenly_staggered_offsets(self, ring3):
        _, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        assert "1/4" in repr(adversary)


class TestScheduling:
    def run(self, automaton, adversary, start, steps, seed=0):
        rng = random.Random(seed)
        fragment = ExecutionFragment.initial(start)
        for _ in range(steps):
            step = adversary.checked_choose(automaton, fragment)
            if step is None:
                break
            fragment = fragment.extend(step.action, step.target.sample(rng))
        return fragment

    def test_unit_time_obligation_holds(self, ring3):
        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        fragment = self.run(automaton, adversary, start, 300)
        last = {}
        for source, action, _ in fragment.steps():
            process = view.process_of(action)
            if process is None:
                continue
            now = lr.lr_time_of(source)
            if process in last:
                assert now - last[process] <= 1
            last[process] = now

    def test_steps_land_on_each_process_grid(self, ring3):
        automaton, view = ring3
        offsets = [Fraction(0), Fraction(1, 4), Fraction(1, 2)]
        adversary = StaggeredDeadlineAdversary(view, offsets, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        fragment = self.run(automaton, adversary, start, 200)
        for source, action, _ in fragment.steps():
            process = view.process_of(action)
            if process is None:
                continue
            phase = (lr.lr_time_of(source) - offsets[process]) % 1
            assert phase == 0, (process, lr.lr_time_of(source))

    def test_consecutive_steps_exactly_one_apart(self, ring3):
        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["contended"]
        fragment = self.run(automaton, adversary, start, 200)
        last = {}
        gaps = set()
        for source, action, _ in fragment.steps():
            process = view.process_of(action)
            if process is None:
                continue
            now = lr.lr_time_of(source)
            if process in last:
                gaps.add(now - last[process])
            last[process] = now
        assert gaps == {Fraction(1)}

    def test_time_advances_between_grid_events(self, ring3):
        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        fragment = self.run(automaton, adversary, start, 100)
        assert lr.lr_time_of(fragment.lstate) > 5

    def test_invariants_preserved(self, ring3):
        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        fragment = self.run(automaton, adversary, start, 250, seed=3)
        for state in fragment.states:
            assert lr.lemma_6_1_holds(state)
            assert lr.mutual_exclusion_holds(state)

    def test_needs_matching_time_increments(self):
        automaton = lr.lehmann_rabin_automaton(3)  # unit increments only
        view = lr.LRProcessView(3)
        adversary = StaggeredDeadlineAdversary(
            view, [Fraction(0), Fraction(1, 4), Fraction(1, 2)], QUANTUM
        )
        start = lr.canonical_states(3)["all_flip"]
        fragment = ExecutionFragment.initial(start)
        # Process 0 is due at its offset 0 grid point immediately, so
        # the first choices succeed; drive until a quantum advance is
        # needed and the mismatch surfaces.
        rng = random.Random(0)
        with pytest.raises(AdversaryError):
            for _ in range(50):
                step = adversary.checked_choose(automaton, fragment)
                fragment = fragment.extend(
                    step.action, step.target.sample(rng)
                )


class TestClaimsUnderAsynchrony:
    def test_composed_statement_survives(self, ring3):
        from repro.events.reach import ReachWithinTime
        from repro.execution.sampler import sample_event

        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        schema = ReachWithinTime(lr.in_critical, 13, lr.lr_time_of)
        rng = random.Random(1)
        wins = 0
        samples = 120
        for _ in range(samples):
            result = sample_event(
                automaton, adversary, ExecutionFragment.initial(start),
                schema, rng, 3_000,
            )
            assert not result.truncated
            wins += bool(result.verdict)
        assert wins / samples >= 0.125

    def test_expected_time_survives(self, ring3):
        from repro.execution.sampler import sample_time_until

        automaton, view = ring3
        adversary = evenly_staggered(view, QUANTUM)
        start = lr.canonical_states(3)["all_flip"]
        rng = random.Random(2)
        times = [
            sample_time_until(
                automaton, adversary, ExecutionFragment.initial(start),
                lr.in_critical, lr.lr_time_of, rng, 20_000,
            )
            for _ in range(60)
        ]
        assert all(t is not None for t in times)
        assert float(sum(times) / len(times)) <= 63.0
