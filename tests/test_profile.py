"""Span profiling: aggregation math, folded output, ``repro profile``."""

from __future__ import annotations

from repro.cli import main
from repro.obs.profile import (
    aggregate_spans,
    merge_profiles,
    profile_tracer,
    render_folded,
    render_profile,
)
from repro.obs.registry import recording_registry


def span_record(span_id, parent, name, duration):
    return {
        "type": "span", "id": span_id, "parent": parent,
        "name": name, "duration_s": duration, "attributes": {},
    }


class TestAggregation:
    def test_self_time_subtracts_children(self):
        records = [
            span_record(0, None, "outer", 1.0),
            span_record(1, 0, "inner", 0.4),
        ]
        rows = {row["stack"]: row for row in aggregate_spans(records)}
        assert rows["outer"]["cum_s"] == 1.0
        assert rows["outer"]["self_s"] == 0.6
        assert rows["outer"]["calls"] == 1
        assert rows["outer;inner"]["cum_s"] == 0.4
        assert rows["outer;inner"]["self_s"] == 0.4

    def test_repeated_stacks_accumulate(self):
        records = [
            span_record(0, None, "phase", 1.0),
            span_record(1, None, "phase", 2.0),
        ]
        (row,) = aggregate_spans(records)
        assert row["calls"] == 2
        assert row["cum_s"] == 3.0

    def test_open_spans_count_a_call_with_zero_seconds(self):
        (row,) = aggregate_spans([span_record(0, None, "open", None)])
        assert row["calls"] == 1
        assert row["cum_s"] == 0.0

    def test_non_span_records_are_ignored(self):
        records = [
            {"type": "counter", "name": "x", "value": 1},
            span_record(0, None, "a", 0.5),
        ]
        assert len(aggregate_spans(records)) == 1

    def test_profile_tracer_matches_span_records(self):
        clock = iter(range(100)).__next__
        registry = recording_registry(clock=lambda: float(clock()))
        with registry.tracer.span("outer"):
            with registry.tracer.span("inner"):
                pass
        rows = {row["stack"]: row for row in profile_tracer(registry.tracer)}
        assert set(rows) == {"outer", "outer;inner"}
        assert rows["outer"]["cum_s"] == 3.0
        assert rows["outer;inner"]["cum_s"] == 1.0
        assert rows["outer"]["self_s"] == 2.0

    def test_merge_profiles_sums_stackwise(self):
        first = aggregate_spans([span_record(0, None, "a", 1.0)])
        second = aggregate_spans([
            span_record(0, None, "a", 2.0),
            span_record(1, None, "b", 0.5),
        ])
        rows = {row["stack"]: row for row in merge_profiles([first, second])}
        assert rows["a"]["calls"] == 2 and rows["a"]["cum_s"] == 3.0
        assert rows["b"]["calls"] == 1


class TestRendering:
    def test_folded_lines_are_stack_space_microseconds(self):
        rows = aggregate_spans([
            span_record(0, None, "outer", 1.0),
            span_record(1, 0, "inner", 0.25),
        ])
        lines = render_folded(rows).splitlines()
        assert "outer 750000" in lines
        assert "outer;inner 250000" in lines

    def test_table_ranks_by_self_time_and_honours_top(self):
        rows = aggregate_spans([
            span_record(0, None, "hot", 5.0),
            span_record(1, None, "warm", 1.0),
            span_record(2, None, "cold", 0.1),
        ])
        table = render_profile(rows, top=2)
        assert "hot" in table and "warm" in table
        assert "cold" not in table
        assert table.index("hot") < table.index("warm")

    def test_empty_profile_renders_placeholder(self):
        assert render_profile([]) == "(no spans recorded)"


class TestCliProfile:
    def test_profile_of_a_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "stats.jsonl"
        assert main(
            ["stats", "--samples", "2", "--trace-out", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(["profile", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "stack" in out and "self_s" in out
        assert "stats.run" in out

    def test_folded_output_parses(self, tmp_path, capsys):
        trace = tmp_path / "stats.jsonl"
        main(["stats", "--samples", "2", "--trace-out", str(trace)])
        capsys.readouterr()
        assert main(["profile", str(trace), "--folded"]) == 0
        out = capsys.readouterr().out
        for line in out.strip().splitlines():
            stack, _, micros = line.rpartition(" ")
            assert stack and int(micros) >= 0

    def test_profile_of_a_manifest(self, tmp_path, capsys):
        from repro.obs import manifest as mf

        assert main(["stats", "--samples", "2"]) == 0
        capsys.readouterr()
        (record,) = mf.load_manifests(tmp_path / "runs")
        assert main(["profile", "--run", record["id"][:6]]) == 0
        out = capsys.readouterr().out
        assert "stats.run" in out

    def test_missing_source_is_a_usage_error(self, capsys):
        assert main(["profile"]) == 2
        assert "JSONL file or --run" in capsys.readouterr().err

    def test_unreadable_file_is_a_usage_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_source_and_run_together_rejected(self, tmp_path, capsys):
        assert main(
            ["profile", str(tmp_path / "x.jsonl"), "--run", "abc"]
        ) == 2
        assert "not both" in capsys.readouterr().err
