"""Unit tests for trace extraction and the mutex interface condition."""

from __future__ import annotations

import random
from fractions import Fraction

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import RoundBasedAdversary
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import ActionSignature
from repro.automaton.traces import (
    count_kind,
    first_occurrence_time,
    mutex_interface_well_formed,
    project_process,
    timed_trace_of,
    trace_of,
)


def frag(*parts):
    states = list(parts[0::2])
    actions = list(parts[1::2])
    return ExecutionFragment(states, actions)


SIGNATURE = ActionSignature(
    external=frozenset({("crit", 0), ("try", 0), ("exit", 0), ("rem", 0)}),
    internal=frozenset({("flip", 0), "nu"}),
)


class TestTraceExtraction:
    def test_internal_actions_dropped(self):
        fragment = frag("a", ("try", 0), "b", ("flip", 0), "c", ("crit", 0), "d")
        assert trace_of(fragment, SIGNATURE) == (("try", 0), ("crit", 0))

    def test_empty_fragment_empty_trace(self):
        assert trace_of(ExecutionFragment.initial("a"), SIGNATURE) == ()

    def test_timed_trace_uses_source_state_times(self):
        # States carry their times directly for this test.
        fragment = frag(
            ("a", Fraction(0)), ("try", 0),
            ("b", Fraction(0)), "nu",
            ("b", Fraction(1)), ("crit", 0),
            ("c", Fraction(1)),
        )
        events = timed_trace_of(fragment, SIGNATURE, lambda s: s[1])
        assert [(e.action, e.time) for e in events] == [
            (("try", 0), 0),
            (("crit", 0), 1),
        ]

    def test_first_occurrence_time(self):
        fragment = frag(
            ("a", Fraction(0)), ("try", 0),
            ("b", Fraction(2)), ("crit", 0),
            ("c", Fraction(2)),
        )
        events = timed_trace_of(fragment, SIGNATURE, lambda s: s[1])
        assert first_occurrence_time(events, "try") == 0
        assert first_occurrence_time(events, "crit") == 2
        assert first_occurrence_time(events, "rem") is None


class TestTraceUtilities:
    def test_project_process(self):
        trace = (("try", 0), ("try", 1), ("crit", 1), ("crit", 0))
        assert project_process(trace, 1) == (("try", 1), ("crit", 1))

    def test_count_kind(self):
        trace = (("try", 0), ("try", 1), ("crit", 1))
        assert count_kind(trace, "try") == 2
        assert count_kind(trace, "rem") == 0


class TestMutexInterface:
    def test_correct_cycle_accepted(self):
        trace = (
            ("try", 0), ("try", 1), ("crit", 0), ("exit", 0),
            ("rem", 0), ("try", 0), ("crit", 1),
        )
        assert mutex_interface_well_formed(trace)

    def test_crit_before_try_rejected(self):
        assert not mutex_interface_well_formed((("crit", 0),))

    def test_double_crit_rejected(self):
        assert not mutex_interface_well_formed(
            (("try", 0), ("crit", 0), ("crit", 0))
        )

    def test_lr_executions_have_well_formed_traces(self):
        """The interface condition holds along adversarial runs."""
        n = 3
        automaton = lr.lehmann_rabin_automaton(n)
        signature = lr.lr_signature(n)
        adversary = RoundBasedAdversary(
            lr.LRProcessView(n), HashedRandomRoundPolicy(4)
        )
        rng = random.Random(0)
        fragment = ExecutionFragment.initial(lr.initial_state(n))
        # Interleave: use the random policy but manually fire try for
        # everyone first so the system actually runs.
        for i in range(n):
            (try_step,) = [
                s for s in automaton.transitions(fragment.lstate)
                if s.action == ("try", i)
            ]
            fragment = fragment.extend(
                try_step.action, try_step.target.sample(rng)
            )
        for _ in range(250):
            step = adversary.checked_choose(automaton, fragment)
            fragment = fragment.extend(step.action, step.target.sample(rng))
        trace = trace_of(fragment, signature)
        assert mutex_interface_well_formed(trace)
        assert count_kind(trace, "try") == n
