"""Invariant tests: Lemma 6.1 and mutual exclusion along executions."""

from __future__ import annotations

import random

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.execution import ExecutionFragment


def walk_states(n, policy, start, steps, seed):
    """All states along one sampled execution."""
    automaton = lr.lehmann_rabin_automaton(n)
    adversary = RoundBasedAdversary(lr.LRProcessView(n), policy)
    rng = random.Random(seed)
    fragment = ExecutionFragment.initial(start)
    for _ in range(steps):
        step = adversary.checked_choose(automaton, fragment)
        if step is None:
            break
        fragment = fragment.extend(step.action, step.target.sample(rng))
    return fragment.states


class TestLemma61AlongExecutions:
    @pytest.mark.parametrize("n", [3, 4, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_invariant_from_initial_state(self, n, seed):
        policy = HashedRandomRoundPolicy(seed)
        start = lr.canonical_states(n)["all_flip"]
        for state in walk_states(n, policy, start, 150, seed):
            assert lr.lemma_6_1_holds(state)
            assert lr.mutual_exclusion_holds(state)

    def test_invariant_from_random_consistent_states(self):
        rng = random.Random(3)
        for start in lr.sample_states_in(lr.T_CLASS, 4, 5, rng):
            for state in walk_states(4, FifoRoundPolicy(), start, 100, 7):
                assert lr.lemma_6_1_holds(state)

    def test_invariant_under_reversed_policy(self):
        start = lr.canonical_states(3)["contended"]
        for state in walk_states(3, ReversedRoundPolicy(), start, 120, 5):
            assert lr.lemma_6_1_holds(state)
            assert lr.mutual_exclusion_holds(state)


class TestLemma61Exhaustively:
    def test_every_step_preserves_lemma_from_sampled_states(self):
        """Inductive check: one step from any consistent state stays
        consistent (Lemma 6.1 is an inductive invariant)."""
        rng = random.Random(9)
        automaton = lr.lehmann_rabin_automaton(3)
        states = [lr.random_consistent_state(3, rng) for _ in range(300)]
        for state in states:
            if state is None:
                continue
            assert lr.lemma_6_1_holds(state)
            for step in automaton.transitions(state):
                for target in step.target.support:
                    assert lr.lemma_6_1_holds(target), (
                        f"{state!r} --{step.action}--> {target!r}"
                    )

    def test_exhaustive_tree_from_initial_state(self):
        """Breadth-first over all adversary interleavings for a few
        levels: every reachable state satisfies both invariants."""
        automaton = lr.lehmann_rabin_automaton(3)
        frontier = {lr.initial_state(3).untimed()}
        seen = set(frontier)
        from fractions import Fraction

        from repro.algorithms.lehmann_rabin.state import LRState

        for _ in range(6):
            next_frontier = set()
            for untimed in frontier:
                state = LRState(untimed[0], untimed[1], Fraction(0))
                for step in automaton.transitions(state):
                    for target in step.target.support:
                        key = target.untimed()
                        if key in seen:
                            continue
                        seen.add(key)
                        next_frontier.add(key)
                        assert lr.lemma_6_1_holds(target)
                        assert lr.mutual_exclusion_holds(target)
            frontier = next_frontier
        assert len(seen) > 50  # the exploration actually went somewhere
