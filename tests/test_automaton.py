"""Unit tests for probabilistic automata and transitions."""

from __future__ import annotations

import pytest

from repro.automaton.automaton import ExplicitAutomaton, FunctionalAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution


class TestTransition:
    def test_components(self):
        target = FiniteDistribution.bernoulli("b", "c")
        step = Transition("a", "act", target)
        assert step.source == "a"
        assert step.action == "act"
        assert step.target is target

    def test_deterministic_constructor(self):
        step = Transition.deterministic("a", "act", "b")
        assert step.is_deterministic()
        assert step.target.the_point() == "b"

    def test_probabilistic_is_not_deterministic(self):
        step = Transition("a", "act", FiniteDistribution.bernoulli("b", "c"))
        assert not step.is_deterministic()

    def test_equality_and_hash(self):
        a = Transition.deterministic("a", "act", "b")
        b = Transition.deterministic("a", "act", "b")
        assert a == b and hash(a) == hash(b)

    def test_inequality_on_action(self):
        a = Transition.deterministic("a", "x", "b")
        b = Transition.deterministic("a", "y", "b")
        assert a != b


class TestExplicitAutomaton:
    def test_requires_states(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton([], [], ActionSignature(), [])

    def test_requires_start_state(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton(["a"], [], ActionSignature(), [])

    def test_start_must_be_state(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton(["a"], ["b"], ActionSignature(), [])

    def test_step_source_must_be_state(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton(
                ["a"], ["a"],
                ActionSignature(internal={"x"}),
                [Transition.deterministic("zzz", "x", "a")],
            )

    def test_step_action_must_be_in_signature(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton(
                ["a"], ["a"],
                ActionSignature(internal={"x"}),
                [Transition.deterministic("a", "unknown", "a")],
            )

    def test_step_target_support_must_be_states(self):
        with pytest.raises(AutomatonError):
            ExplicitAutomaton(
                ["a"], ["a"],
                ActionSignature(internal={"x"}),
                [Transition.deterministic("a", "x", "zzz")],
            )

    def test_transitions_by_source(self, branching_automaton):
        steps = branching_automaton.transitions("s0")
        assert len(steps) == 2
        assert {step.action for step in steps} == {"a", "b"}

    def test_transitions_of_terminal_state(self, branching_automaton):
        assert branching_automaton.transitions("s1") == ()

    def test_transitions_unknown_state_rejected(self, branching_automaton):
        with pytest.raises(AutomatonError):
            branching_automaton.transitions("zzz")

    def test_enabled_actions_order_stable(self, branching_automaton):
        assert branching_automaton.enabled_actions("s0") == ("a", "b")

    def test_is_enabled(self, branching_automaton):
        assert branching_automaton.is_enabled("s0", "a")
        assert not branching_automaton.is_enabled("s1", "a")

    def test_transitions_for(self, branching_automaton):
        steps = branching_automaton.transitions_for("s0", "a")
        assert len(steps) == 1 and steps[0].action == "a"

    def test_steps_property_lists_everything(self, coin_walk):
        assert len(coin_walk.steps) == 2

    def test_validate_state(self, coin_walk):
        coin_walk.validate_state("start")
        with pytest.raises(AutomatonError):
            coin_walk.validate_state("zzz")


class TestFullyProbabilistic:
    def test_chain_is_fully_probabilistic(self, deterministic_chain):
        assert deterministic_chain.is_fully_probabilistic()

    def test_branching_is_not(self, branching_automaton):
        assert not branching_automaton.is_fully_probabilistic()

    def test_two_start_states_is_not(self):
        auto = ExplicitAutomaton(
            ["a", "b"], ["a", "b"], ActionSignature(), []
        )
        assert not auto.is_fully_probabilistic()


class TestFunctionalAutomaton:
    def make(self):
        signature = ActionSignature(internal={"inc"})

        def transition_fn(state: int):
            return [Transition.deterministic(state, "inc", state + 1)]

        return FunctionalAutomaton(
            start_states=[0], signature=signature, transition_fn=transition_fn
        )

    def test_requires_start_state(self):
        with pytest.raises(AutomatonError):
            FunctionalAutomaton([], ActionSignature(), lambda s: [])

    def test_computes_transitions(self):
        auto = self.make()
        steps = auto.transitions(5)
        assert steps[0].target.the_point() == 6

    def test_memoises(self):
        calls = []

        def transition_fn(state):
            calls.append(state)
            return [Transition.deterministic(state, "inc", state + 1)]

        auto = FunctionalAutomaton(
            [0], ActionSignature(internal={"inc"}), transition_fn
        )
        auto.transitions(3)
        auto.transitions(3)
        assert calls == [3]

    def test_rejects_wrong_source(self):
        def transition_fn(state):
            return [Transition.deterministic(state + 1, "inc", state)]

        auto = FunctionalAutomaton(
            [0], ActionSignature(internal={"inc"}), transition_fn
        )
        with pytest.raises(AutomatonError):
            auto.transitions(0)

    def test_rejects_unknown_action(self):
        def transition_fn(state):
            return [Transition.deterministic(state, "mystery", state)]

        auto = FunctionalAutomaton(
            [0], ActionSignature(internal={"inc"}), transition_fn
        )
        with pytest.raises(AutomatonError):
            auto.transitions(0)

    def test_state_validator_hook(self):
        def validator(state):
            if state < 0:
                raise AutomatonError("negative")

        auto = FunctionalAutomaton(
            [0], ActionSignature(internal={"inc"}),
            lambda s: [], state_validator=validator,
        )
        auto.validate_state(3)
        with pytest.raises(AutomatonError):
            auto.validate_state(-1)
