"""The Section 4 event schemas applied to Lehmann-Rabin itself.

Proposition A.11's proof banks compound events of the form
``first(flip_{i-1}, left) AND first(flip_{i+1}, right)``, each worth at
least 1/4 by Proposition 4.2, and shows they lead to ``P``.  These
tests evaluate those events *exactly* on Lehmann-Rabin execution trees
under several adversaries — the paper's machinery applied to the
paper's own algorithm.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
    RotatingRoundPolicy,
)
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.adversaries import ObstructionistPolicy
from repro.algorithms.lehmann_rabin.automaton import FLIP
from repro.algorithms.lehmann_rabin.state import PC, ProcessState, Side
from repro.automaton.execution import ExecutionFragment
from repro.events.combinators import Intersection
from repro.events.first import FirstOccurrence
from repro.events.independence import action_outcome_lower_bound
from repro.events.next_first import NextFirstOccurrence
from repro.events.reach import ReachWithinTime
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import event_probability_bounds


def flip_lands(i, side):
    return lambda state: state.process(i) == ProcessState(PC.W, side)


def adversaries(view, max_rounds):
    return [
        RoundBasedAdversary(view, policy, max_rounds=max_rounds)
        for policy in (
            FifoRoundPolicy(),
            ReversedRoundPolicy(),
            RotatingRoundPolicy(),
            ObstructionistPolicy(),
            HashedRandomRoundPolicy(3),
        )
    ]


@pytest.fixture(scope="module")
def ring3():
    return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)


class TestPerFlipBounds:
    def test_flip_outcome_bound_is_half(self, ring3):
        """Each flip gives each side probability exactly 1/2 from every
        state that enables it — the p_i of Proposition 4.2."""
        automaton, _ = ring3
        rng = random.Random(0)
        states = [
            s for s in (lr.random_consistent_state(3, rng) for _ in range(60))
            if s is not None
        ]
        for i in range(3):
            for side in (Side.LEFT, Side.RIGHT):
                bound = action_outcome_lower_bound(
                    automaton, (FLIP, i), flip_lands(i, side), states
                )
                assert bound == Fraction(1, 2)


class TestCompoundEventsOnLR:
    def test_two_flip_conjunction_meets_quarter(self, ring3):
        """P[first(flip_0, left) AND first(flip_2, right)] >= 1/4 under
        every adversary tried, exactly (Proposition 4.2 clause 1)."""
        automaton, view = ring3
        start = lr.make_state(
            [
                ProcessState(PC.F, Side.LEFT),
                ProcessState(PC.W, Side.LEFT),
                ProcessState(PC.F, Side.LEFT),
            ]
        )
        event = Intersection(
            [
                FirstOccurrence((FLIP, 0), flip_lands(0, Side.LEFT)),
                FirstOccurrence((FLIP, 2), flip_lands(2, Side.RIGHT)),
            ]
        )
        for adversary in adversaries(view, max_rounds=3):
            tree = ExecutionAutomaton(
                automaton, adversary, ExecutionFragment.initial(start)
            )
            bounds = event_probability_bounds(tree, event, max_steps=14)
            assert bounds.lower >= Fraction(1, 4), adversary

    def test_next_event_meets_half(self, ring3):
        """P[next((flip_0, left), (flip_2, right))] >= 1/2, exactly
        (Proposition 4.2 clause 2)."""
        automaton, view = ring3
        start = lr.canonical_states(3)["all_flip"]
        event = NextFirstOccurrence(
            [
                ((FLIP, 0), flip_lands(0, Side.LEFT)),
                ((FLIP, 2), flip_lands(2, Side.RIGHT)),
            ]
        )
        for adversary in adversaries(view, max_rounds=2):
            tree = ExecutionAutomaton(
                automaton, adversary, ExecutionFragment.initial(start)
            )
            bounds = event_probability_bounds(tree, event, max_steps=10)
            assert bounds.lower >= Fraction(1, 2), adversary

    def test_lucky_coins_imply_progress(self, ring3):
        """The A.9-shaped implication on a concrete G state: whenever
        both constrained coins land well, P is reached within 5 —
        i.e. P[coins-good AND NOT reach] = 0, exactly."""
        from repro.events.combinators import Complement

        automaton, view = ring3
        # X_0 in T (F), X_1 = W<-, X_2 in {ER,R,F,W->,D->} (F here).
        start = lr.make_state(
            [
                ProcessState(PC.F, Side.LEFT),
                ProcessState(PC.W, Side.LEFT),
                ProcessState(PC.F, Side.LEFT),
            ]
        )
        coins_good = Intersection(
            [
                FirstOccurrence((FLIP, 0), flip_lands(0, Side.LEFT)),
                FirstOccurrence((FLIP, 2), flip_lands(2, Side.RIGHT)),
            ]
        )
        missed = Complement(
            ReachWithinTime(lr.in_pre_critical, 5, lr.lr_time_of)
        )
        counterexample = Intersection([coins_good, missed])
        for adversary in adversaries(view, max_rounds=6):
            tree = ExecutionAutomaton(
                automaton, adversary, ExecutionFragment.initial(start)
            )
            bounds = event_probability_bounds(
                tree, counterexample, max_steps=26
            )
            assert bounds.upper == 0, adversary
