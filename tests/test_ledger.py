"""Unit tests for the proof ledger."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.proofs.ledger import ProofLedger
from repro.proofs.statements import ArrowStatement, StateClass


def cls(name):
    return StateClass(name, lambda s: False)


def arrow(source, target, t, p, schema="S"):
    return ArrowStatement(source, target, t, p, schema)


@pytest.fixture
def ledger():
    return ProofLedger("S", execution_closed=True)


class TestAssume:
    def test_assume_and_retrieve(self, ledger):
        statement = arrow(cls("U"), cls("V"), 1, 1)
        sid = ledger.assume(statement, evidence="hand proof")
        assert ledger.statement(sid) == statement
        assert ledger.derivation(sid).rule == "assume"
        assert ledger.derivation(sid).evidence == "hand proof"

    def test_empty_evidence_rejected(self, ledger):
        with pytest.raises(ProofError):
            ledger.assume(arrow(cls("U"), cls("V"), 1, 1), evidence="")

    def test_cross_schema_rejected(self, ledger):
        foreign = arrow(cls("U"), cls("V"), 1, 1, schema="other")
        with pytest.raises(ProofError):
            ledger.assume(foreign, evidence="x")

    def test_len_counts_entries(self, ledger):
        assert len(ledger) == 0
        ledger.assume(arrow(cls("U"), cls("V"), 1, 1), evidence="x")
        assert len(ledger) == 1


class TestRules:
    def test_compose_via_ids(self, ledger):
        a = ledger.assume(arrow(cls("U"), cls("V"), 1, Fraction(1, 2)), "e")
        b = ledger.assume(arrow(cls("V"), cls("W"), 2, Fraction(1, 2)), "e")
        composed = ledger.compose(a, b)
        statement = ledger.statement(composed)
        assert statement.time_bound == 3
        assert statement.probability == Fraction(1, 4)

    def test_compose_blocked_without_closure(self):
        open_ledger = ProofLedger("S", execution_closed=False)
        a = open_ledger.assume(arrow(cls("U"), cls("V"), 1, 1), "e")
        b = open_ledger.assume(arrow(cls("V"), cls("W"), 1, 1), "e")
        with pytest.raises(ProofError):
            open_ledger.compose(a, b)

    def test_union(self, ledger):
        a = ledger.assume(arrow(cls("U"), cls("V"), 1, 1), "e")
        lifted = ledger.union(a, cls("X"))
        assert ledger.statement(lifted).source == cls("U") | cls("X")

    def test_weaken(self, ledger):
        a = ledger.assume(arrow(cls("U"), cls("V"), 1, Fraction(1, 2)), "e")
        weakened = ledger.weaken(a, probability=Fraction(1, 4), time_bound=2)
        assert ledger.statement(weakened).probability == Fraction(1, 4)
        assert ledger.statement(weakened).time_bound == 2

    def test_strengthen_and_widen(self, ledger):
        u, x, v, w = cls("U"), cls("X"), cls("V"), cls("W")
        a = ledger.assume(arrow(u | x, v, 1, 1), "e")
        restricted = ledger.strengthen_source(a, u)
        widened = ledger.widen_target(restricted, v | w)
        assert ledger.statement(widened).source == u
        assert ledger.statement(widened).target == v | w

    def test_chain(self, ledger):
        ids = [
            ledger.assume(arrow(cls("A"), cls("B"), 1, 1), "e"),
            ledger.assume(arrow(cls("B"), cls("C"), 1, 1), "e"),
            ledger.assume(arrow(cls("C"), cls("D"), 1, 1), "e"),
        ]
        final = ledger.chain(ids)
        assert ledger.statement(final).target == cls("D")

    def test_chain_empty_rejected(self, ledger):
        with pytest.raises(ProofError):
            ledger.chain([])

    def test_unknown_id_rejected(self, ledger):
        with pytest.raises(ProofError):
            ledger.statement(99)


class TestProvenance:
    def build(self, ledger):
        a = ledger.assume(arrow(cls("U"), cls("V"), 1, 1), "axiom A")
        b = ledger.assume(arrow(cls("V"), cls("W"), 1, 1), "axiom B")
        return a, b, ledger.compose(a, b)

    def test_leaves(self, ledger):
        a, b, _ = self.build(ledger)
        assert [i for i, _ in ledger.leaves()] == [a, b]

    def test_supporting_leaves(self, ledger):
        a, b, composed = self.build(ledger)
        assert ledger.supporting_leaves(composed) == [a, b]

    def test_supporting_leaves_deduplicates(self, ledger):
        a = ledger.assume(arrow(cls("U"), cls("U"), 1, 1), "axiom A")
        twice = ledger.compose(a, a)
        assert ledger.supporting_leaves(twice) == [a]

    def test_explain_renders_tree(self, ledger):
        _, _, composed = self.build(ledger)
        text = ledger.explain(composed)
        assert "compose (Thm 3.4)" in text
        assert "axiom A" in text and "axiom B" in text
        assert text.splitlines()[0].startswith(f"[{composed}]")
