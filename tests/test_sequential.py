"""Unit tests for the sequential probability ratio test."""

from __future__ import annotations

import random

import pytest

from repro.errors import VerificationError
from repro.probability.sequential import (
    SequentialProbabilityRatioTest,
    SprtVerdict,
    sprt_for_claim,
)


class TestConstruction:
    def test_requires_ordered_probabilities(self):
        with pytest.raises(VerificationError):
            SequentialProbabilityRatioTest(p0=0.5, p1=0.5)
        with pytest.raises(VerificationError):
            SequentialProbabilityRatioTest(p0=0.6, p1=0.4)

    def test_requires_valid_error_rates(self):
        with pytest.raises(VerificationError):
            SequentialProbabilityRatioTest(p0=0.1, p1=0.2, alpha=0.0)

    def test_claim_helper(self):
        test = sprt_for_claim(0.125, margin=0.1)
        assert test.p0 == 0.125
        assert test.p1 == pytest.approx(0.225)

    def test_claim_helper_validates(self):
        with pytest.raises(VerificationError):
            sprt_for_claim(0.0)
        with pytest.raises(VerificationError):
            sprt_for_claim(0.5, margin=0.0)


class TestDecisions:
    def bernoulli_sampler(self, p, seed):
        rng = random.Random(seed)
        return lambda: rng.random() < p

    def test_accepts_h1_when_probability_is_high(self):
        test = sprt_for_claim(0.125, margin=0.1)
        result = test.run(self.bernoulli_sampler(0.9, 0))
        assert result.verdict is SprtVerdict.ACCEPT_H1

    def test_accepts_h0_when_probability_is_low(self):
        test = sprt_for_claim(0.5, margin=0.2)
        result = test.run(self.bernoulli_sampler(0.05, 1))
        assert result.verdict is SprtVerdict.ACCEPT_H0

    def test_budget_exhaustion_is_undecided(self):
        # True parameter inside the indifference region with a tiny
        # budget: typically undecided.
        test = SequentialProbabilityRatioTest(p0=0.49, p1=0.51)
        result = test.run(self.bernoulli_sampler(0.5, 2), max_samples=10)
        assert result.verdict is SprtVerdict.UNDECIDED
        assert result.samples_used == 10

    def test_easy_cases_use_few_samples(self):
        test = sprt_for_claim(0.125, margin=0.1, alpha=0.01, beta=0.01)
        result = test.run(self.bernoulli_sampler(0.95, 3))
        assert result.verdict is SprtVerdict.ACCEPT_H1
        assert result.samples_used < 200

    def test_positive_budget_required(self):
        test = sprt_for_claim(0.5, margin=0.1)
        with pytest.raises(VerificationError):
            test.run(lambda: True, max_samples=0)

    def test_error_rates_empirically(self):
        """With the true parameter at p1, H0 is accepted rarely."""
        test = SequentialProbabilityRatioTest(
            p0=0.2, p1=0.5, alpha=0.05, beta=0.05
        )
        wrong = 0
        for seed in range(200):
            result = test.run(
                self.bernoulli_sampler(0.5, seed), max_samples=5_000
            )
            wrong += result.verdict is SprtVerdict.ACCEPT_H0
        assert wrong / 200 <= 0.08  # ~beta, with slack


class TestStream:
    def test_run_on_decides_from_stream(self):
        test = sprt_for_claim(0.125, margin=0.2)
        result = test.run_on([True] * 100)
        assert result.verdict is SprtVerdict.ACCEPT_H1

    def test_exhausted_stream_is_undecided(self):
        test = SequentialProbabilityRatioTest(p0=0.49, p1=0.51)
        result = test.run_on([True, False] * 3)
        assert result.verdict is SprtVerdict.UNDECIDED


class TestOnLehmannRabin:
    def test_composed_statement_supported_sequentially(self):
        """The SPRT supports T --13-->_1/8 C quickly under a hostile
        adversary (the measured probability is ~0.97, far above the
        claim, so the sequential test needs only a handful of runs)."""
        from repro.adversary.unit_time import (
            FifoRoundPolicy,
            RoundBasedAdversary,
        )
        from repro.algorithms import lehmann_rabin as lr
        from repro.automaton.execution import ExecutionFragment
        from repro.events.reach import ReachWithinTime
        from repro.execution.sampler import sample_event

        automaton = lr.lehmann_rabin_automaton(3)
        adversary = RoundBasedAdversary(
            lr.LRProcessView(3), FifoRoundPolicy()
        )
        start = lr.canonical_states(3)["all_flip"]
        schema = ReachWithinTime(lr.in_critical, 13, lr.lr_time_of)
        rng = random.Random(0)

        def sample() -> bool:
            result = sample_event(
                automaton, adversary, ExecutionFragment.initial(start),
                schema, rng, 1_000,
            )
            return bool(result.verdict)

        test = sprt_for_claim(0.125, margin=0.3)
        result = test.run(sample, max_samples=2_000)
        assert result.verdict is SprtVerdict.ACCEPT_H1
        assert result.samples_used < 100
