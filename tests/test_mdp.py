"""Unit tests for the exact MDP checkers."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.errors import VerificationError
from repro.mdp.bounded import min_reach_over_starts, min_reach_probability_rounds
from repro.mdp.value_iteration import bounded_reachability, unbounded_reachability


class TestBoundedReachability:
    def test_coin_walk_values(self, coin_walk):
        goal = lambda s: s == "goal"
        # 0 steps: not there yet.
        assert bounded_reachability(coin_walk, goal, "start", 0) == 0
        # 2 steps: succeed both coins in a row: 1/4.
        assert bounded_reachability(coin_walk, goal, "start", 2) == Fraction(1, 4)
        # 4 steps: 11/16 (two geometric successes within 4 trials).
        assert bounded_reachability(coin_walk, goal, "start", 4) == Fraction(11, 16)

    def test_target_start_state_is_one(self, coin_walk):
        assert bounded_reachability(
            coin_walk, lambda s: s == "start", "start", 0
        ) == 1

    def test_min_vs_max_on_branching(self, branching_automaton):
        target = lambda s: s == "s1"
        # The Section 2 example: min over the two steps is 1/3, max 1/2.
        assert bounded_reachability(
            branching_automaton, target, "s0", 1, minimise=True
        ) == Fraction(1, 3)
        assert bounded_reachability(
            branching_automaton, target, "s0", 1, minimise=False
        ) == Fraction(1, 2)

    def test_terminal_state_contributes_zero(self, branching_automaton):
        assert bounded_reachability(
            branching_automaton, lambda s: s == "s0", "s1", 5
        ) == 0

    def test_negative_steps_rejected(self, coin_walk):
        with pytest.raises(VerificationError):
            bounded_reachability(coin_walk, lambda s: False, "start", -1)

    def test_monotone_in_horizon(self, coin_walk):
        goal = lambda s: s == "goal"
        values = [
            bounded_reachability(coin_walk, goal, "start", k)
            for k in range(8)
        ]
        assert values == sorted(values)


class TestUnboundedReachability:
    def test_eventual_reach_is_one(self, coin_walk):
        value = unbounded_reachability(
            coin_walk, lambda s: s == "goal", "start"
        )
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_unreachable_target_is_zero(self, coin_walk):
        value = unbounded_reachability(
            coin_walk, lambda s: s == "nowhere", "start"
        )
        assert value == 0.0

    def test_min_on_branching_with_absorbing_choice(self, branching_automaton):
        # From s0, minimising over {a: 1/2, b: 1/3} one-shot choices.
        value = unbounded_reachability(
            branching_automaton, lambda s: s == "s1", "s0", minimise=True
        )
        assert value == pytest.approx(1 / 3, abs=1e-9)

    def test_unreachable_start_rejected(self, coin_walk):
        with pytest.raises(VerificationError):
            unbounded_reachability(coin_walk, lambda s: False, "nowhere")


class TestRoundSynchronousRecursion:
    @pytest.fixture
    def ring3(self):
        return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)

    def test_pre_critical_reaches_c_in_one_round(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["pre_critical"]
        value = min_reach_probability_rounds(
            automaton, view, lr.in_critical, start, 1,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 1

    def test_zero_rounds_no_progress(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["pre_critical"]
        value = min_reach_probability_rounds(
            automaton, view, lr.in_critical, start, 0,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 0

    def test_target_at_start_is_one(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["pre_critical"]
        value = min_reach_probability_rounds(
            automaton, view, lr.in_pre_critical, start, 0,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 1

    def test_monotone_in_rounds(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["all_flip"]
        values = [
            min_reach_probability_rounds(
                automaton, view, lr.in_critical, start, k,
                strip_time=lambda s: s.untimed(),
            )
            for k in range(5)
        ]
        assert values == sorted(values)

    def test_negative_rounds_rejected(self, ring3):
        automaton, view = ring3
        start = lr.canonical_states(3)["all_flip"]
        with pytest.raises(VerificationError):
            min_reach_probability_rounds(
                automaton, view, lr.in_critical, start, -1,
                strip_time=lambda s: s.untimed(),
            )

    def test_min_reach_over_starts_returns_witness(self, ring3):
        automaton, view = ring3
        states = [
            lr.canonical_states(3)["pre_critical"],   # reaches C surely
            lr.canonical_states(3)["all_flip"],       # needs luck
        ]
        probability, witness = min_reach_over_starts(
            automaton, view, lr.in_critical, states, 2,
            strip_time=lambda s: s.untimed(),
        )
        assert witness == states[1]
        assert probability < 1

    def test_min_reach_over_starts_empty_rejected(self, ring3):
        automaton, view = ring3
        with pytest.raises(VerificationError):
            min_reach_over_starts(
                automaton, view, lr.in_critical, [], 2,
                strip_time=lambda s: s.untimed(),
            )

    def test_adversary_cannot_beat_paper_bound_on_G(self, ring3):
        # Proposition A.11 exactly: from a sampled G state, the worst
        # round-synchronous adversary still reaches P within 5 rounds
        # with probability >= 1/4.
        automaton, view = ring3
        rng = random.Random(5)
        for start in lr.sample_states_in(lr.G_CLASS, 3, 3, rng):
            value = min_reach_probability_rounds(
                automaton, view, lr.in_pre_critical, start, 5,
                strip_time=lambda s: s.untimed(),
            )
            assert value >= Fraction(1, 4)
