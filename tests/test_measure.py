"""Unit tests for the cone measure and event-probability bounds."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    StoppingAdversary,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import VerificationError
from repro.events.first import FirstOccurrence
from repro.events.reach import EventuallyReach, ReachWithinSteps
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import (
    event_probability_bounds,
    exact_event_probability,
    rectangle_probability,
)


def initial(state):
    return ExecutionFragment.initial(state)


def tree_for(automaton, max_steps=None, start="start"):
    adversary = FirstEnabledAdversary()
    if max_steps is not None:
        adversary = StoppingAdversary(adversary, max_steps)
    return ExecutionAutomaton(automaton, adversary, initial(start))


class TestRectangleProbability:
    def test_start_rectangle_has_mass_one(self, coin_walk):
        tree = tree_for(coin_walk)
        assert rectangle_probability(tree, initial("start")) == 1

    def test_one_step_rectangle(self, coin_walk):
        tree = tree_for(coin_walk)
        fragment = initial("start").extend("hop1", "middle")
        assert rectangle_probability(tree, fragment) == Fraction(1, 2)

    def test_two_step_rectangle_is_product(self, coin_walk):
        tree = tree_for(coin_walk)
        fragment = (
            initial("start").extend("hop1", "middle").extend("hop2", "goal")
        )
        assert rectangle_probability(tree, fragment) == Fraction(1, 4)

    def test_unscheduled_action_has_mass_zero(self, coin_walk):
        tree = tree_for(coin_walk)
        fragment = initial("start").extend("hop2", "middle")
        assert rectangle_probability(tree, fragment) == 0

    def test_non_extension_has_mass_zero(self, coin_walk):
        tree = tree_for(coin_walk)
        assert rectangle_probability(tree, initial("middle")) == 0


class TestEventProbabilityBounds:
    def test_exact_when_horizon_decides_everything(self, coin_walk):
        # With a 2-step stopping adversary every execution is decided.
        tree = tree_for(coin_walk, max_steps=2)
        schema = ReachWithinSteps(lambda s: s == "goal", 2)
        bounds = event_probability_bounds(tree, schema, max_steps=2)
        assert bounds.is_exact
        assert bounds.lower == Fraction(1, 4)

    def test_reach_probability_grows_with_horizon(self, coin_walk):
        schema = EventuallyReach(lambda s: s == "goal")
        tree = tree_for(coin_walk)
        shallow = event_probability_bounds(tree, schema, max_steps=2)
        deep = event_probability_bounds(tree, schema, max_steps=8)
        assert deep.lower > shallow.lower
        assert shallow.lower == Fraction(1, 4)

    def test_undecided_mass_reported(self, coin_walk):
        schema = EventuallyReach(lambda s: s == "goal")
        tree = tree_for(coin_walk)
        bounds = event_probability_bounds(tree, schema, max_steps=2)
        assert not bounds.is_exact
        assert bounds.width == 1 - Fraction(1, 4) - 0  # undecided mass
        assert bounds.upper == 1

    def test_eight_step_value_matches_hand_computation(self, coin_walk):
        # Reaching goal within k steps: needs one success in each leg.
        # With 4 coin flips available the probability is
        # P[X + Y <= 4] where X, Y ~ Geometric(1/2):
        # = sum_{x=1..3} (1/2)^x * (1 - (1/2)^(4-x)) = 11/16.
        schema = EventuallyReach(lambda s: s == "goal")
        tree = tree_for(coin_walk)
        bounds = event_probability_bounds(tree, schema, max_steps=4)
        assert bounds.lower == Fraction(11, 16)

    def test_maximal_vacuity_counts_as_success(self, coin_walk):
        # first(hop2, ...) holds vacuously when the run halts before
        # hop2 ever fires.
        tree = tree_for(coin_walk, max_steps=0)
        schema = FirstOccurrence("hop2", lambda s: False)
        bounds = event_probability_bounds(tree, schema, max_steps=5)
        assert bounds.is_exact and bounds.lower == 1

    def test_negative_max_steps_rejected(self, coin_walk):
        tree = tree_for(coin_walk)
        with pytest.raises(VerificationError):
            event_probability_bounds(
                tree, EventuallyReach(lambda s: False), max_steps=-1
            )


class TestExactEventProbability:
    def test_returns_exact_value(self, coin_walk):
        tree = tree_for(coin_walk, max_steps=3)
        schema = ReachWithinSteps(lambda s: s == "middle", 3)
        # P[reach middle within 3 steps] = 1 - (1/2)^3 = 7/8.
        assert exact_event_probability(tree, schema, 3) == Fraction(7, 8)

    def test_raises_on_undecided_mass(self, coin_walk):
        tree = tree_for(coin_walk)
        schema = EventuallyReach(lambda s: s == "goal")
        with pytest.raises(VerificationError):
            exact_event_probability(tree, schema, 2)
