"""Unit tests for the analysis harness (runners, sweeps, reporting)."""

from __future__ import annotations

import random

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.experiments import horizon_sweep
from repro.analysis.montecarlo import (
    LRExperimentSetup,
    check_lr_statement,
    measure_lr_expected_time,
    start_states_for,
)
from repro.analysis.reporting import banner, format_fraction, format_table


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(
            ("name", "value"), [("a", 1), ("longer-name", 22)]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_format_fraction(self):
        from fractions import Fraction

        text = format_fraction(Fraction(1, 8))
        assert text.startswith("1/8") and "0.1250" in text

    def test_banner(self):
        text = banner("Hello")
        assert text.splitlines()[1] == "Hello"


class TestSetup:
    def test_build_creates_family(self):
        setup = LRExperimentSetup.build(3, random_seeds=(1,))
        assert setup.n == 3
        names = [name for name, _ in setup.adversaries]
        assert "fifo" in names and "obstructionist" in names

    def test_start_states_cover_source_region(self):
        setup = LRExperimentSetup.build(3, random_seeds=())
        statement = lr.leaf_statements()["A.11"]  # source G
        states = start_states_for(
            statement, setup, random.Random(0), random_count=3
        )
        assert states
        assert all(statement.source.contains(s) for s in states)

    def test_canonical_states_included_when_in_region(self):
        setup = LRExperimentSetup.build(3, random_seeds=())
        statement = lr.leaf_statements()["A.3"]  # source T
        states = start_states_for(
            statement, setup, random.Random(0), random_count=0
        )
        untimed = {s.untimed() for s in states}
        assert lr.canonical_states(3)["all_flip"].untimed() in untimed


class TestRunners:
    def test_check_lr_statement_smoke(self):
        setup = LRExperimentSetup.build(3, random_seeds=(1,))
        report = check_lr_statement(
            lr.leaf_statements()["A.1"],
            setup,
            samples_per_pair=10,
            random_starts=2,
            max_steps=60,
        )
        assert not report.refuted
        assert report.min_estimate == 1.0  # P -> C is certain

    def test_measure_expected_time_smoke(self):
        setup = LRExperimentSetup.build(3, random_seeds=())
        reports = measure_lr_expected_time(setup, samples=6, max_steps=4_000)
        for name, report in reports.items():
            assert report.unreached == 0, name
            assert report.mean <= 63.0, name

    def test_horizon_sweep_is_monotone(self):
        rows = horizon_sweep(
            bounds=(2, 13), n=3, samples_per_pair=25
        )
        assert rows[0].min_success_estimate <= rows[1].min_success_estimate + 0.1

    def test_ring_size_sweep_smoke(self):
        from repro.analysis.experiments import ring_size_sweep

        rows = ring_size_sweep(
            sizes=(3,), samples_per_pair=10, time_samples=8
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.n == 3
        assert row.claimed == 0.125
        assert row.min_success_estimate >= row.claimed
        assert row.mean_time_to_c <= 63.0
        assert row.max_time_to_c >= row.mean_time_to_c

    def test_adversary_power_comparison_smoke(self):
        from repro.analysis.experiments import adversary_power_comparison

        rows = adversary_power_comparison(
            n=3, samples_per_pair=10, time_samples=10
        )
        names = {row.adversary for row in rows}
        assert {"fifo", "obstructionist", "greedy-min"} <= names
        for row in rows:
            assert row.unreached == 0
            assert 0.0 <= row.success_estimate <= 1.0
