"""Unit tests for the appendix-lemma catalog and its exact checker."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.lehmann_rabin import appendix as ap
from repro.algorithms.lehmann_rabin.automaton import FLIP
from repro.algorithms.lehmann_rabin.state import PC, ProcessState, Side
from repro.errors import VerificationError


class TestCatalog:
    def test_all_locals_cover_the_state_space(self):
        assert len(ap.ALL_LOCALS) == 20  # 10 counters x 2 sides

    def test_locals_of(self):
        assert set(ap.locals_of(PC.W)) == {
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.RIGHT),
        }

    def test_states_matching_respects_constraints(self):
        states = ap.states_matching(
            3, {0: ap.pointing(PC.S, Side.LEFT)}
        )
        assert states
        assert all(
            s.process(0) == ProcessState(PC.S, Side.LEFT) for s in states
        )

    def test_states_matching_only_consistent(self):
        # S<- at 0 and S-> at 1 both hold Res_0: no consistent state.
        with pytest.raises(VerificationError):
            ap.states_matching(
                2,
                {
                    0: ap.pointing(PC.S, Side.RIGHT),
                    1: ap.pointing(PC.S, Side.LEFT),
                },
            )

    def test_conditional_catalog_is_complete(self):
        lemmas = ap.conditional_lemmas(3)
        names = [lemma.name for lemma in lemmas]
        assert names == [
            "A.2", "A.4.1", "A.4.2", "A.4.3", "A.4.4", "A.5",
            "A.7 (left)", "A.7 (right)", "A.8 (left)", "A.8 (right)",
            "A.9", "A.10",
        ]

    def test_a4_case_validation(self):
        with pytest.raises(VerificationError):
            ap.lemma_a4(3, 5)

    def test_variant_validation(self):
        with pytest.raises(VerificationError):
            ap.lemma_a7(3, "sideways")
        with pytest.raises(VerificationError):
            ap.lemma_a8(3, "sideways")


class TestConditionalLemmasExactly:
    """Every conditional lemma: zero counterexample probability over
    every hypothesis state and every round-synchronous strategy."""

    @pytest.mark.parametrize(
        "index", range(12), ids=lambda i: ap.conditional_lemmas(3)[i].name
    )
    def test_lemma_holds_exactly_n3(self, index):
        lemma = ap.conditional_lemmas(3)[index]
        result = ap.check_conditional_lemma(lemma, 3)
        assert result.holds, (
            f"{result.name}: counterexample probability "
            f"{result.worst_value} from {result.witness!r}"
        )
        assert result.states_checked == len(lemma.hypothesis_states)

    @pytest.mark.parametrize("variant", ["left", "right"])
    def test_a7_holds_exhaustively_on_ring4(self, variant):
        lemma = ap.lemma_a7(4, variant)
        result = ap.check_conditional_lemma(lemma, 4)
        assert result.holds
        assert result.states_checked == 305  # the full hypothesis set

    @pytest.mark.parametrize("variant", ["left", "right"])
    def test_a8_holds_exhaustively_on_ring4(self, variant):
        lemma = ap.lemma_a8(4, variant)
        result = ap.check_conditional_lemma(lemma, 4)
        assert result.holds
        assert result.states_checked == 1270
        assert result.worst_value == 0

    def test_a4_1_holds_on_ring4(self):
        lemma = ap.lemma_a4(4, 1)
        result = ap.check_conditional_lemma(lemma, 4, max_states=40)
        assert result.holds
        assert result.worst_value == 0

    def test_a8_left_holds_on_ring4(self):
        lemma = ap.lemma_a8(4, "left")
        result = ap.check_conditional_lemma(lemma, 4, max_states=40)
        assert result.holds


class TestProbabilisticLemmasExactly:
    def test_a12_holds_and_is_tight(self):
        result = ap.check_probabilistic_lemma(ap.lemma_a12(3), 3)
        assert result.holds
        # The paper's 1/2 is exactly attained by the optimal spoiler.
        assert result.worst_value == Fraction(1, 2)

    def test_a13_holds(self):
        result = ap.check_probabilistic_lemma(ap.lemma_a13(3), 3)
        assert result.holds
        assert result.worst_value >= Fraction(1, 2)


class TestPaperTypoInA8:
    def test_literal_d_right_reading_is_false(self):
        """With the paper's literal ``D`` read as ``D->`` in the
        symmetric clause, the adversary has a sure counterexample:
        fire the committed neighbour's doomed check first."""
        bad = ap.ConditionalLemma(
            name="A.8 (right, literal D->)",
            description="the paper's literal reading",
            hypothesis_states=tuple(
                ap.states_matching(
                    3,
                    {
                        0: ap.pointing(PC.D, Side.RIGHT),
                        1: ap.pointing(PC.S, Side.RIGHT),
                    },
                )
            ),
            watched={(FLIP, 0): ap._flip_lands(0, Side.LEFT)},
            time_bound=1,
            conclusion=ap._any_in_p(0, 1),
        )
        result = ap.check_conditional_lemma(bad, 3)
        assert not result.holds
        assert result.worst_value == 1


class TestConditionalChecker:
    def test_max_counterexample_zero_rounds(self):
        from repro.algorithms import lehmann_rabin as lr
        from repro.mdp.conditional import (
            max_counterexample_probability_rounds,
        )

        automaton = lr.lehmann_rabin_automaton(3)
        view = lr.LRProcessView(3)
        start = lr.canonical_states(3)["all_flip"]
        # Zero rounds, conclusion not yet true: certain counterexample.
        value = max_counterexample_probability_rounds(
            automaton, view, {}, lr.in_critical, start, 0,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 1
        # Conclusion already true: no counterexample possible.
        pre = lr.canonical_states(3)["pre_critical"]
        value = max_counterexample_probability_rounds(
            automaton, view, {}, lr.in_pre_critical, pre, 0,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 0

    def test_negative_rounds_rejected(self):
        from repro.algorithms import lehmann_rabin as lr
        from repro.mdp.conditional import (
            max_counterexample_probability_rounds,
        )

        with pytest.raises(VerificationError):
            max_counterexample_probability_rounds(
                lr.lehmann_rabin_automaton(3),
                lr.LRProcessView(3),
                {},
                lr.in_critical,
                lr.canonical_states(3)["all_flip"],
                -1,
                strip_time=lambda s: s.untimed(),
            )

    def test_watched_violation_removes_mass(self):
        """Constraining a coin halves the counterexample mass reachable
        through that coin's wrong outcome."""
        from repro.algorithms import lehmann_rabin as lr
        from repro.mdp.conditional import (
            max_counterexample_probability_rounds,
        )

        automaton = lr.lehmann_rabin_automaton(3)
        view = lr.LRProcessView(3)
        # One process at F, alone: within 1 round it flips; conclusion
        # "process 0 points left" is exactly the watched constraint.
        start = lr.make_state(
            [
                ProcessState(PC.F, Side.LEFT),
                ProcessState(PC.R, Side.LEFT),
                ProcessState(PC.R, Side.LEFT),
            ]
        )

        def concluded(state):
            return state.process(0) == ProcessState(PC.W, Side.LEFT)

        unconstrained = max_counterexample_probability_rounds(
            automaton, view, {}, concluded, start, 1,
            strip_time=lambda s: s.untimed(),
        )
        constrained = max_counterexample_probability_rounds(
            automaton, view,
            {(FLIP, 0): ap._flip_lands(0, Side.LEFT)},
            concluded, start, 1,
            strip_time=lambda s: s.untimed(),
        )
        assert unconstrained == Fraction(1, 2)  # wrong coin = failure
        assert constrained == 0  # wrong coin leaves the event
