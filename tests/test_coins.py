"""Unit tests for the two-coin Example 4.1 model and its adversaries."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.coins import (
    FLIP_P,
    FLIP_Q,
    HEADS,
    TAILS,
    both_flip_adversary,
    never_flip_q_adversary,
    p_heads,
    peek_adversary,
    q_tails,
    two_coin_automaton,
)
from repro.automaton.execution import ExecutionFragment
from repro.events.combinators import Intersection
from repro.events.first import FirstOccurrence
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import exact_event_probability


@pytest.fixture
def automaton():
    return two_coin_automaton()


def probability_under(automaton, adversary, event):
    tree = ExecutionAutomaton(
        automaton, adversary, ExecutionFragment.initial((None, None))
    )
    return exact_event_probability(tree, event, max_steps=4)


def pattern_event():
    return Intersection(
        [FirstOccurrence(FLIP_P, p_heads), FirstOccurrence(FLIP_Q, q_tails)]
    )


class TestModel:
    def test_nine_states(self, automaton):
        assert len(automaton.states) == 9

    def test_each_coin_flips_once(self, automaton):
        assert automaton.is_enabled((None, None), FLIP_P)
        assert automaton.is_enabled((None, None), FLIP_Q)
        assert not automaton.is_enabled((HEADS, None), FLIP_P)
        assert automaton.transitions((HEADS, TAILS)) == ()

    def test_flips_are_fair(self, automaton):
        (step,) = automaton.transitions_for((None, None), FLIP_P)
        assert step.target[(HEADS, None)] == Fraction(1, 2)
        assert step.target[(TAILS, None)] == Fraction(1, 2)


class TestAdversaries:
    def test_both_flip_gives_one_quarter(self, automaton):
        assert probability_under(
            automaton, both_flip_adversary(), pattern_event()
        ) == Fraction(1, 4)

    def test_peek_on_heads_gives_one_quarter(self, automaton):
        assert probability_under(
            automaton, peek_adversary(HEADS), pattern_event()
        ) == Fraction(1, 4)

    def test_peek_on_tails_gives_one_half(self, automaton):
        # P=H (prob 1/2): Q never flips, first_q vacuous -> success.
        assert probability_under(
            automaton, peek_adversary(TAILS), pattern_event()
        ) == Fraction(1, 2)

    def test_never_flip_q_gives_one_half(self, automaton):
        assert probability_under(
            automaton, never_flip_q_adversary(), pattern_event()
        ) == Fraction(1, 2)

    def test_example_4_1_lower_bound_holds_for_all(self, automaton):
        adversaries = [
            both_flip_adversary(),
            peek_adversary(HEADS),
            peek_adversary(TAILS),
            never_flip_q_adversary(),
        ]
        for adversary in adversaries:
            assert probability_under(
                automaton, adversary, pattern_event()
            ) >= Fraction(1, 4)

    def test_peek_induces_dependence_on_conditional(self, automaton):
        # Conditioned on both coins flipped, peek-on-heads forces P=H:
        # P[H,T | both] = 1/2 instead of the naive 1/4.
        occurs_p = FirstOccurrence(FLIP_P, lambda s: True)
        occurs_q_heads_only = Intersection(
            [
                FirstOccurrence(FLIP_P, p_heads),
                FirstOccurrence(FLIP_Q, q_tails),
                _occurs(FLIP_Q),
            ]
        )
        joint = probability_under(
            automaton, peek_adversary(HEADS), occurs_q_heads_only
        )
        both = probability_under(
            automaton, peek_adversary(HEADS), _occurs(FLIP_Q)
        )
        assert both == Fraction(1, 2)
        assert joint / both == Fraction(1, 2)


def _occurs(action):
    from repro.events.combinators import Complement

    return Complement(FirstOccurrence(action, lambda s: False))
