"""Fault-tolerance suite: chaos injection, checkpoint/resume, recovery.

The contract under test extends the determinism suite's: a sampling
report is a pure function of the root seed and the work's identity —
*even when* workers crash, hang, return corrupted results, the pool
degrades to inline execution, or the run is killed and resumed from a
checkpoint.  Every recovery path must leave the report byte-identical
to an undisturbed ``workers=1`` run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from dataclasses import dataclass

import pytest

from repro import obs
from repro.cli import main
from repro.errors import (
    CheckpointError,
    ResultCorruptionError,
    TaskExecutionError,
    TaskTimeoutError,
    VerificationError,
    WorkerCrashError,
)
from repro.parallel import (
    Checkpoint,
    FaultPlan,
    RunPolicy,
    fork_available,
    resolve_workers,
    run_tasks,
)
from repro.parallel import pool as pool_module
from repro.parallel.faults import CORRUPT, CRASH, HANG
from repro.parallel.seeds import derive_seed

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="the pooled paths need the fork method"
)


@dataclass(frozen=True)
class Job:
    """A minimal task: seeded, picklable, cheap to execute."""

    index: int
    seed: int


def jobs(count, root=99):
    return [Job(i, derive_seed(root, "job", i)) for i in range(count)]


def compute(context, task):
    """Deterministic in the task seed alone (the pool's contract)."""
    import random

    rng = random.Random(task.seed)
    if obs.enabled():
        obs.incr("jobs.completed")
    return (task.index, sum(rng.randrange(1000) for _ in range(50)))


def slow_compute(context, task):
    time.sleep(10.0)
    return task.index


def encode_job(result):
    return {"index": result[0], "value": result[1]}


def decode_job(record, task):
    return (int(record["index"]), int(record["value"]))


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("crash=0.1,hang=0.05,corrupt=0.02,seed=7")
        assert plan == FaultPlan(crash=0.1, hang=0.05, corrupt=0.02, seed=7)
        assert plan.active

    def test_parse_rejects_garbage(self):
        for spec in [
            "crash",                    # not NAME=VALUE
            "explode=0.5",              # unknown field
            "crash=0.1,crash=0.2",      # duplicate
            "crash=lots",               # malformed value
            "seed=3",                   # injects nothing
            "crash=1.5",                # rate out of range
            "crash=0.6,hang=0.6",       # rates sum past 1
        ]:
            with pytest.raises(VerificationError):
                FaultPlan.parse(spec)

    def test_decisions_are_pure_functions_of_identity(self):
        plan = FaultPlan(crash=0.3, hang=0.3, corrupt=0.3, seed=5)
        decisions = [plan.decide(1234, a) for a in range(1, 20)]
        assert decisions == [plan.decide(1234, a) for a in range(1, 20)]
        # Changing any identity part redraws the fate.
        assert decisions != [plan.decide(1235, a) for a in range(1, 20)]
        assert [
            FaultPlan(crash=0.3, hang=0.3, corrupt=0.3, seed=6).decide(
                1234, a
            )
            for a in range(1, 20)
        ] != decisions

    def test_rates_partition_one_draw(self):
        plan = FaultPlan(crash=0.25, hang=0.25, corrupt=0.25, seed=1)
        draws = [plan.decide(seed, 1) for seed in range(2000)]
        counts = {
            kind: draws.count(kind) for kind in (CRASH, HANG, CORRUPT, None)
        }
        for kind in (CRASH, HANG, CORRUPT, None):
            assert 0.2 < counts[kind] / len(draws) < 0.3

    def test_inactive_plan_never_injects(self):
        plan = FaultPlan(seed=3)
        assert not plan.active
        assert all(plan.decide(seed, 1) is None for seed in range(100))


class TestRunPolicy:
    def test_validate_rejects_contradictions(self):
        for policy in [
            RunPolicy(timeout=0.0),
            RunPolicy(timeout=-1.0),
            RunPolicy(retries=-1),
            RunPolicy(backoff=-0.1),
            RunPolicy(resume=True),  # no checkpoint to resume from
            RunPolicy(faults=FaultPlan(hang=0.5)),  # hang needs timeout
            RunPolicy(degrade_after=0),
        ]:
            with pytest.raises(VerificationError):
                policy.validate()

    def test_default_policy_is_valid(self):
        RunPolicy().validate()

    def test_degrade_threshold_scales_with_workers(self):
        assert RunPolicy().degrade_threshold(2) == 4
        assert RunPolicy().degrade_threshold(8) == 16
        assert RunPolicy(degrade_after=2).degrade_threshold(8) == 2


# ----------------------------------------------------------------------
# Pool recovery: every injected failure converges to the baseline
# ----------------------------------------------------------------------


@needs_fork
class TestPoolRecovery:
    def baseline(self, tasks):
        return run_tasks(compute, None, tasks, workers=1)

    def test_crashes_and_corruption_recover_identically(self):
        tasks = jobs(8)
        policy = RunPolicy(
            retries=8, backoff=0.01,
            faults=FaultPlan(crash=0.3, corrupt=0.2, seed=5),
        )
        with obs.recording() as registry:
            survived = run_tasks(
                compute, None, tasks, workers=2, policy=policy
            )
        assert survived == self.baseline(tasks)
        counters = registry.metrics.snapshot()["counters"]
        assert counters["pool.crashes"] >= 1
        assert counters["pool.corrupted"] >= 1
        assert counters["pool.retries"] >= 2

    def test_hangs_recover_identically(self):
        tasks = jobs(6)
        policy = RunPolicy(
            retries=8, backoff=0.01, timeout=0.5,
            faults=FaultPlan(hang=0.3, seed=11),
        )
        with obs.recording() as registry:
            survived = run_tasks(
                compute, None, tasks, workers=2, policy=policy
            )
        assert survived == self.baseline(tasks)
        assert (
            registry.metrics.snapshot()["counters"]["pool.timeouts"] >= 1
        )

    def test_exhausted_retries_raise_crash_error(self):
        tasks = jobs(4)
        policy = RunPolicy(
            retries=1, backoff=0.0, degrade_after=100,
            faults=FaultPlan(crash=1.0, seed=2),
        )
        with pytest.raises(WorkerCrashError, match="died with exit"):
            run_tasks(compute, None, tasks, workers=2, policy=policy)

    def test_exhausted_retries_raise_corruption_error(self):
        tasks = jobs(4)
        policy = RunPolicy(
            retries=1, backoff=0.0, degrade_after=100,
            faults=FaultPlan(corrupt=1.0, seed=2),
        )
        with pytest.raises(ResultCorruptionError, match="digest mismatch"):
            run_tasks(compute, None, tasks, workers=2, policy=policy)

    def test_real_timeout_raises_after_budget(self):
        tasks = jobs(2)
        policy = RunPolicy(timeout=0.2, retries=0, backoff=0.0)
        with pytest.raises(TaskTimeoutError, match="wall-clock timeout"):
            run_tasks(slow_compute, None, tasks, workers=2, policy=policy)

    def test_degradation_completes_identically(self):
        tasks = jobs(6)
        # Every pooled attempt crashes; only degradation can finish the
        # run, and it must not change a single result.
        policy = RunPolicy(
            retries=10, backoff=0.0, degrade_after=3,
            faults=FaultPlan(crash=1.0, seed=4),
        )
        pool_module._degraded_warned = False
        with obs.recording() as registry:
            survived = run_tasks(
                compute, None, tasks, workers=2, policy=policy
            )
        assert survived == self.baseline(tasks)
        snapshot = registry.metrics.snapshot()
        assert snapshot["gauges"]["pool.degraded"] == 1
        assert snapshot["counters"]["pool.crashes"] >= 3

    def test_task_exception_fails_fast_and_keeps_metrics(self):
        # A deterministic in-task exception is not a worker fault:
        # retrying replays it, so the pool must fail fast — after
        # merging the metrics of every task that did complete.
        bad_seed = derive_seed(99, "job", 7)

        def sometimes_bad(context, task):
            if task.seed == bad_seed:
                raise ValueError("boom at seed %d" % task.seed)
            return compute(context, task)

        tasks = jobs(8)
        policy = RunPolicy(retries=5, backoff=0.0)
        with obs.recording() as registry:
            with pytest.raises(TaskExecutionError, match="ValueError: boom"):
                run_tasks(
                    sometimes_bad, None, tasks, workers=2, policy=policy
                )
        counters = registry.metrics.snapshot()["counters"]
        assert counters.get("jobs.completed", 0) >= 1

    def test_metrics_merge_equals_sequential_under_faults(self):
        tasks = jobs(6)
        with obs.recording() as sequential:
            run_tasks(compute, None, tasks, workers=1)
        policy = RunPolicy(
            retries=8, backoff=0.01, faults=FaultPlan(crash=0.3, seed=9)
        )
        with obs.recording() as chaotic:
            run_tasks(compute, None, tasks, workers=2, policy=policy)
        # Task metrics count every task exactly once despite retries;
        # only the pool's own fault counters may differ.
        assert (
            chaotic.metrics.snapshot()["counters"]["jobs.completed"]
            == sequential.metrics.snapshot()["counters"]["jobs.completed"]
            == 6
        )


@needs_fork
class TestWorkerCollapseWarning:
    def test_forkless_collapse_warns_once_and_gauges(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        monkeypatch.setattr(pool_module, "_degraded_warned", False)
        with obs.recording() as registry:
            assert resolve_workers(4) == 1
            assert resolve_workers(4) == 1
        err = capsys.readouterr().err
        assert err.count("degraded to sequential execution") == 1
        assert registry.metrics.snapshot()["gauges"]["pool.degraded"] == 1

    def test_single_worker_never_warns(self, monkeypatch, capsys):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        monkeypatch.setattr(pool_module, "_degraded_warned", False)
        assert resolve_workers(1) == 1
        assert capsys.readouterr().err == ""


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------


class TestCheckpoint:
    def test_append_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Checkpoint(path) as checkpoint:
            checkpoint.append("scope-a", 11, {"x": 1})
            checkpoint.append("scope-a", 12, {"x": 2})
            checkpoint.append("scope-b", 11, {"x": 3})
        fresh = Checkpoint(path)
        assert fresh.completed("scope-a") == {11: {"x": 1}, 12: {"x": 2}}
        # Same seed under another scope is a different result — the
        # seed hashes the pair identity, not the statement.
        assert fresh.completed("scope-b") == {11: {"x": 3}}
        assert fresh.completed("scope-c") == {}
        assert len(fresh) == 3
        assert fresh.dropped == 0

    def test_truncated_tail_is_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Checkpoint(path) as checkpoint:
            checkpoint.append("s", 1, {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"scope": "s", "seed": 2, "resu')  # killed here
        with obs.recording() as registry:
            fresh = Checkpoint(path)
            assert fresh.completed("s") == {1: {"x": 1}}
        assert fresh.dropped == 1
        assert (
            registry.metrics.snapshot()["counters"][
                "checkpoint.records_dropped"
            ]
            == 1
        )

    def test_malformed_middle_lines_are_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            json.dumps({"scope": "s", "seed": 1, "result": {"x": 1}}),
            "not json at all",
            json.dumps(["a", "list"]),
            json.dumps({"scope": "s", "seed": "notint", "result": {}}),
            json.dumps({"scope": "s", "seed": 2, "result": {"x": 2}}),
            "",
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fresh = Checkpoint(path)
        assert fresh.completed("s") == {1: {"x": 1}, 2: {"x": 2}}
        assert fresh.dropped == 3

    def test_missing_file_is_empty(self, tmp_path):
        assert Checkpoint(tmp_path / "absent.jsonl").completed("s") == {}

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint(tmp_path).load()  # a directory, not a file

    def test_records_are_single_sorted_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Checkpoint(path) as checkpoint:
            checkpoint.append("s", 5, {"b": 2, "a": 1})
        line = path.read_text(encoding="utf-8")
        assert line == (
            '{"result": {"a": 1, "b": 2}, "scope": "s", "seed": 5}\n'
        )


class TestCheckpointedRuns:
    def test_checkpoint_requires_codecs(self, tmp_path):
        policy = RunPolicy(checkpoint=Checkpoint(tmp_path / "c.jsonl"))
        with pytest.raises(CheckpointError, match="codecs"):
            run_tasks(compute, None, jobs(2), workers=1, policy=policy)

    def test_checkpoint_requires_task_seeds(self, tmp_path):
        policy = RunPolicy(checkpoint=Checkpoint(tmp_path / "c.jsonl"))
        with pytest.raises(CheckpointError, match="no seed attribute"):
            run_tasks(
                lambda context, task: task, None, ["seedless"], workers=1,
                policy=policy, encode=lambda r: {}, decode=lambda r, t: t,
            )

    def test_interrupted_run_resumes_identically(self, tmp_path):
        tasks = jobs(8)
        baseline = run_tasks(compute, None, tasks, workers=1)
        path = tmp_path / "run.jsonl"
        completions = []

        def dies_after_three(context, task):
            if len(completions) == 3:
                raise RuntimeError("simulated kill")
            result = compute(context, task)
            completions.append(task.index)
            return result

        with pytest.raises(RuntimeError, match="simulated kill"):
            with Checkpoint(path) as checkpoint:
                run_tasks(
                    dies_after_three, None, tasks, workers=1,
                    policy=RunPolicy(checkpoint=checkpoint),
                    scope="test-scope", encode=encode_job, decode=decode_job,
                )
        assert len(Checkpoint(path)) == 3

        executed = []

        def counting(context, task):
            executed.append(task.index)
            return compute(context, task)

        with obs.recording() as registry:
            with Checkpoint(path) as checkpoint:
                resumed = run_tasks(
                    counting, None, tasks, workers=1,
                    policy=RunPolicy(checkpoint=checkpoint, resume=True),
                    scope="test-scope", encode=encode_job, decode=decode_job,
                )
        assert resumed == baseline
        assert len(executed) == len(tasks) - 3
        counters = registry.metrics.snapshot()["counters"]
        assert counters["checkpoint.tasks_skipped"] == 3
        assert counters["checkpoint.tasks_recorded"] == len(tasks) - 3

    def test_resume_ignores_other_scopes(self, tmp_path):
        tasks = jobs(4)
        path = tmp_path / "run.jsonl"
        with Checkpoint(path) as checkpoint:
            run_tasks(
                compute, None, tasks, workers=1,
                policy=RunPolicy(checkpoint=checkpoint),
                scope="scope-one", encode=encode_job, decode=decode_job,
            )
        executed = []

        def counting(context, task):
            executed.append(task.index)
            return compute(context, task)

        with Checkpoint(path) as checkpoint:
            run_tasks(
                counting, None, tasks, workers=1,
                policy=RunPolicy(checkpoint=checkpoint, resume=True),
                scope="scope-two", encode=encode_job, decode=decode_job,
            )
        assert len(executed) == len(tasks)

    @needs_fork
    def test_pooled_results_checkpoint_as_they_complete(self, tmp_path):
        # Exhaust the retry budget midway: the tasks completed before
        # the failure must already be on disk, not buffered for a
        # return that never happens.  The last task hangs until its
        # timeout, so every fast task has delivered by the time the
        # run aborts.
        tasks = jobs(8)
        last_seed = tasks[-1].seed

        def mostly_fast(context, task):
            if task.seed == last_seed:
                time.sleep(30.0)
            return compute(context, task)

        path = tmp_path / "run.jsonl"
        policy = RunPolicy(
            timeout=1.0, retries=0, backoff=0.0,
            checkpoint=Checkpoint(path),
        )
        with pytest.raises(TaskTimeoutError):
            with policy.checkpoint:
                run_tasks(
                    mostly_fast, None, tasks, workers=2, policy=policy,
                    scope="s", encode=encode_job, decode=decode_job,
                )
        assert len(Checkpoint(path)) == len(tasks) - 1


# ----------------------------------------------------------------------
# Interruption semantics (KeyboardInterrupt / SIGTERM)
# ----------------------------------------------------------------------


@needs_fork
class TestInterruption:
    def test_keyboard_interrupt_leaves_no_orphans(
        self, monkeypatch, tmp_path
    ):
        def interrupted_wait(conns, timeout=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(pool_module, "_wait_ready", interrupted_wait)
        path = tmp_path / "run.jsonl"
        policy = RunPolicy(checkpoint=Checkpoint(path))
        with pytest.raises(KeyboardInterrupt):
            with policy.checkpoint:
                run_tasks(
                    slow_compute, None, jobs(6), workers=2, policy=policy,
                    scope="s", encode=lambda r: {"v": r},
                    decode=lambda r, t: r["v"],
                )
        assert multiprocessing.active_children() == []
        # Whatever the checkpoint holds, every line is complete.
        if path.exists():
            for line in path.read_text(encoding="utf-8").splitlines():
                json.loads(line)

    def test_sigterm_tears_down_workers_and_checkpoint(self, tmp_path):
        script = tmp_path / "victim.py"
        pid_dir = tmp_path / "pids"
        pid_dir.mkdir()
        checkpoint = tmp_path / "run.jsonl"
        script.write_text(textwrap.dedent(f"""
            import os, sys, time
            from dataclasses import dataclass

            sys.path.insert(0, {str(os.path.join("/root/repo", "src"))!r})
            from repro.parallel import Checkpoint, RunPolicy, run_tasks

            @dataclass(frozen=True)
            class Job:
                index: int
                seed: int

            def execute(context, task):
                pid_path = os.path.join(
                    {str(pid_dir)!r}, str(os.getpid()) + ".pid"
                )
                with open(pid_path, "w") as handle:
                    handle.write(str(task.index))
                time.sleep(0.25)
                return task.index

            tasks = [Job(i, i) for i in range(200)]
            policy = RunPolicy(checkpoint=Checkpoint({str(checkpoint)!r}))
            print("ready", flush=True)
            with policy.checkpoint:
                run_tasks(
                    execute, None, tasks, workers=2, policy=policy,
                    scope="s", encode=lambda r: {{"v": r}},
                    decode=lambda record, task: record["v"],
                )
        """), encoding="utf-8")
        process = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert process.stdout.readline().strip() == "ready"
            deadline = time.monotonic() + 10.0
            while not list(pid_dir.glob("*.pid")):
                assert time.monotonic() < deadline, "no worker ever started"
                time.sleep(0.02)
            time.sleep(0.1)
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=10.0)
        finally:
            process.kill()
            process.wait()
        assert process.returncode == 128 + signal.SIGTERM
        # Give reparented stragglers (there must be none) a beat, then
        # check every worker pid is gone.
        time.sleep(0.2)
        for pid_file in pid_dir.glob("*.pid"):
            pid = int(pid_file.stem)
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # The checkpoint survived the kill with only complete records.
        if checkpoint.exists():
            for line in checkpoint.read_text(encoding="utf-8").splitlines():
                record = json.loads(line)
                assert set(record) == {"result", "scope", "seed"}


# ----------------------------------------------------------------------
# Acceptance: CLI reports stay byte-identical through chaos and resume
# ----------------------------------------------------------------------


@needs_fork
class TestAcceptance:
    CHECK = ["check", "--prop", "A.14", "--n", "3", "--samples", "6",
             "--json"]

    def run_cli(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_injected_faults_report_byte_identical(self, capsys):
        code, baseline, _ = self.run_cli(self.CHECK, capsys)
        assert code == 0
        pool_module._degraded_warned = False
        code, chaotic, _ = self.run_cli(
            self.CHECK + [
                "--workers", "2", "--retries", "8", "--timeout", "30",
                "--inject-faults", "crash=0.2,corrupt=0.1,seed=3",
            ],
            capsys,
        )
        assert code == 0
        assert chaotic == baseline

    def test_killed_then_resumed_report_byte_identical(
        self, capsys, tmp_path
    ):
        code, baseline, _ = self.run_cli(self.CHECK, capsys)
        assert code == 0
        checkpoint = str(tmp_path / "run.jsonl")
        # Crash-heavy plan with no retry budget: the run aborts midway,
        # having checkpointed whatever it finished.
        code, _, err = self.run_cli(
            self.CHECK + [
                "--workers", "2", "--retries", "0", "--checkpoint",
                checkpoint, "--inject-faults", "crash=0.6,seed=1",
            ],
            capsys,
        )
        assert code == 3
        assert "rerun with --resume" in err
        # Which tasks finished before the abort depends on scheduling;
        # whatever landed on disk, the resumed report must not change.
        if os.path.exists(checkpoint):
            for line in open(checkpoint, encoding="utf-8"):
                json.loads(line)
        code, resumed, _ = self.run_cli(
            self.CHECK + [
                "--workers", "2", "--checkpoint", checkpoint, "--resume",
            ],
            capsys,
        )
        assert code == 0
        assert resumed == baseline

    def test_checkpoint_resumes_across_engines(self, capsys, tmp_path):
        # Checkpoint records carry task seeds and results, not engine
        # internals: a checkpoint written under --engine tree must
        # satisfy a resumed run under --engine batched with the same
        # bytes out.
        code, baseline, _ = self.run_cli(
            self.CHECK + ["--engine", "batched"], capsys
        )
        assert code == 0
        checkpoint = str(tmp_path / "run.jsonl")
        code, first, _ = self.run_cli(
            self.CHECK + ["--engine", "tree", "--checkpoint", checkpoint],
            capsys,
        )
        assert code == 0
        assert first == baseline
        with obs.recording() as registry:
            code, resumed, _ = self.run_cli(
                self.CHECK + [
                    "--engine", "batched",
                    "--checkpoint", checkpoint, "--resume",
                ],
                capsys,
            )
        assert code == 0
        assert resumed == baseline
        counters = registry.metrics.snapshot()["counters"]
        assert counters["checkpoint.tasks_skipped"] >= 1

    def test_fault_flags_reject_contradictions(self, capsys):
        with pytest.raises(VerificationError, match="requires a per-task"):
            main(self.CHECK + ["--inject-faults", "hang=0.5"])
        with pytest.raises(VerificationError, match="resume"):
            main(self.CHECK + ["--resume"])

    def test_stats_surfaces_fault_counters(self, capsys):
        pool_module._degraded_warned = False
        code = main([
            "stats", "--n", "3", "--samples", "4", "--workers", "2",
            "--retries", "8", "--inject-faults", "crash=0.3,seed=2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pool.retries" in out
        assert "pool.crashes" in out
