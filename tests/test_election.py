"""Unit tests for the randomized leader-election case study."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import election as el
from repro.algorithms.election.automaton import (
    ElectionState,
    EStatus,
    election_transitions,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import AutomatonError, ProofError
from repro.execution.sampler import sample_time_until


def state_of(statuses, time=Fraction(0)):
    return ElectionState(tuple(statuses), time)


class TestTransitions:
    def test_flip_is_fair(self):
        state = state_of([EStatus.F, EStatus.F])
        steps = [
            s for s in election_transitions(state) if s.action == ("flip", 0)
        ]
        assert len(steps) == 1
        outcomes = {s.statuses[0] for s in steps[0].target.support}
        assert outcomes == {EStatus.W0, EStatus.W1}

    def test_no_resolve_while_flips_pending(self):
        state = state_of([EStatus.W0, EStatus.F])
        actions = {s.action for s in election_transitions(state)}
        assert ("resolve", 0) not in actions

    def test_losing_zero_withdraws(self):
        state = state_of([EStatus.W0, EStatus.W1])
        (step,) = [
            s for s in election_transitions(state) if s.action == ("resolve", 0)
        ]
        after = step.target.the_point()
        assert after.statuses[0] is EStatus.O

    def test_winning_one_parks_in_rs(self):
        state = state_of([EStatus.W1, EStatus.W0, EStatus.W1])
        (step,) = [
            s for s in election_transitions(state) if s.action == ("resolve", 0)
        ]
        after = step.target.the_point()
        assert after.statuses[0] is EStatus.RS1

    def test_all_equal_round_keeps_everyone(self):
        state = state_of([EStatus.W1, EStatus.W1])
        (step,) = [
            s for s in election_transitions(state) if s.action == ("resolve", 0)
        ]
        after = step.target.the_point()
        assert after.statuses[0] is EStatus.RS1

    def test_last_resolver_releases_barrier(self):
        state = state_of([EStatus.RS1, EStatus.W1])
        (step,) = [
            s for s in election_transitions(state) if s.action == ("resolve", 1)
        ]
        after = step.target.the_point()
        # Both survived the all-ones round; the barrier resets them to F.
        assert after.statuses == (EStatus.F, EStatus.F)

    def test_round_mixing_is_impossible(self):
        """The regression the RS statuses exist for: an early resolver
        must not re-flip before the round's other resolutions, so later
        resolvers still see the true round bit-vector."""
        state = state_of([EStatus.W1, EStatus.W0])
        # Candidate 0 resolves first: parks in RS1 (not F!), keeping
        # its coin visible.
        (step0,) = [
            s for s in election_transitions(state) if s.action == ("resolve", 0)
        ]
        mid = step0.target.the_point()
        assert mid.statuses[0] is EStatus.RS1
        # No flip is enabled for candidate 0 while 1 is unresolved.
        actions = {s.action for s in election_transitions(mid)}
        assert ("flip", 0) not in actions
        # Candidate 1 still sees the mixed bits {1, 0} and withdraws.
        (step1,) = [
            s for s in election_transitions(mid) if s.action == ("resolve", 1)
        ]
        after = step1.target.the_point()
        assert after.statuses[1] is EStatus.O
        # Barrier released: the survivor returns to F.
        assert after.statuses[0] is EStatus.F

    def test_lone_candidate_leads(self):
        state = state_of([EStatus.F, EStatus.O, EStatus.O])
        (step,) = [
            s for s in election_transitions(state) if s.action == ("lead", 0)
        ]
        assert step.target.the_point().statuses[0] is EStatus.L
        actions = {s.action for s in election_transitions(state)}
        assert ("flip", 0) not in actions

    def test_minimum_candidates(self):
        with pytest.raises(AutomatonError):
            el.election_automaton(1)


class TestRegionsAndClasses:
    def test_active_count(self):
        assert el.active_count(state_of([EStatus.F, EStatus.O, EStatus.W1])) == 2

    def test_leader_elected(self):
        assert el.leader_elected(state_of([EStatus.L, EStatus.O]))
        assert not el.leader_elected(state_of([EStatus.F, EStatus.F]))

    def test_at_most_class_union(self):
        d3 = el.at_most_active_class(3)
        assert d3.atoms == frozenset({"A1", "A2", "A3"})
        assert d3.contains(state_of([EStatus.F, EStatus.O, EStatus.F]))
        assert not d3.contains(state_of([EStatus.L, EStatus.O]))

    def test_exactly_class_cached_and_consistent(self):
        assert el.exactly_active_class(2) is el.exactly_active_class(2)
        # Reuse inside unions must not trip the predicate-conflict check.
        _ = el.at_most_active_class(3) | el.at_most_active_class(2)

    def test_level_statement_validation(self):
        with pytest.raises(ProofError):
            el.level_statement(1)


class TestProofChain:
    def test_composed_statement_shape(self):
        chain = el.election_proof(5)
        final = chain.final_statement
        assert final.time_bound == 3 * 4 + 2
        assert final.probability == Fraction(1, 16)
        assert final.target == el.LEADER_CLASS

    def test_expected_time_bound(self):
        assert el.election_expected_time_bound(2) == 8
        assert el.election_expected_time_bound(4) == 20

    def test_minimum_candidates_enforced(self):
        with pytest.raises(ProofError):
            el.election_proof(1)
        with pytest.raises(ProofError):
            el.election_expected_time_bound(1)


class TestSimulation:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_leader_always_elected(self, n):
        automaton = el.election_automaton(n)
        view = el.ElectionProcessView(n)
        for policy in (
            FifoRoundPolicy(), ReversedRoundPolicy(), HashedRandomRoundPolicy(1)
        ):
            adversary = RoundBasedAdversary(view, policy)
            rng = random.Random(n)
            for _ in range(10):
                elapsed = sample_time_until(
                    automaton,
                    adversary,
                    ExecutionFragment.initial(el.election_initial_state(n)),
                    el.leader_elected,
                    el.election_time_of,
                    rng,
                    5_000,
                )
                assert elapsed is not None

    def test_exactly_one_leader_ever(self):
        n = 4
        automaton = el.election_automaton(n)
        view = el.ElectionProcessView(n)
        adversary = RoundBasedAdversary(view, HashedRandomRoundPolicy(2))
        rng = random.Random(0)
        fragment = ExecutionFragment.initial(el.election_initial_state(n))
        for _ in range(400):
            step = adversary.checked_choose(automaton, fragment)
            if step is None:
                break
            fragment = fragment.extend(step.action, step.target.sample(rng))
            leaders = sum(
                1 for s in fragment.lstate.statuses if s is EStatus.L
            )
            assert leaders <= 1

    def test_mean_time_within_expected_bound(self):
        n = 4
        automaton = el.election_automaton(n)
        view = el.ElectionProcessView(n)
        adversary = RoundBasedAdversary(view, FifoRoundPolicy())
        rng = random.Random(1)
        times = [
            sample_time_until(
                automaton,
                adversary,
                ExecutionFragment.initial(el.election_initial_state(n)),
                el.leader_elected,
                el.election_time_of,
                rng,
                5_000,
            )
            for _ in range(150)
        ]
        mean = float(sum(times) / len(times))
        assert mean <= float(el.election_expected_time_bound(n))
