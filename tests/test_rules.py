"""Unit tests for the proof rules (Proposition 3.2, Theorem 3.4, ...)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.proofs.rules import (
    chain,
    compose,
    strengthen_source,
    union_rule,
    weaken,
    widen_target,
)
from repro.proofs.statements import ArrowStatement, StateClass


def cls(name):
    return StateClass(name, lambda s: False)


def arrow(source, target, t, p, schema="S"):
    return ArrowStatement(source, target, t, p, schema)


class TestCompose:
    def test_times_add_probabilities_multiply(self):
        u, v, w = cls("U"), cls("V"), cls("W")
        first = arrow(u, v, 2, Fraction(1, 2))
        second = arrow(v, w, 3, Fraction(1, 4))
        composed = compose(first, second)
        assert composed.source == u
        assert composed.target == w
        assert composed.time_bound == 5
        assert composed.probability == Fraction(1, 8)

    def test_intermediate_sets_must_match(self):
        first = arrow(cls("U"), cls("V"), 1, 1)
        second = arrow(cls("X"), cls("W"), 1, 1)
        with pytest.raises(ProofError):
            compose(first, second)

    def test_union_equality_counts_as_match(self):
        u, v, w = cls("U"), cls("V"), cls("W")
        first = arrow(u, v | w, 1, 1)
        second = arrow(w | v, u, 1, 1)
        assert compose(first, second).target == u

    def test_schemas_must_match(self):
        u, v, w = cls("U"), cls("V"), cls("W")
        first = arrow(u, v, 1, 1, schema="A")
        second = arrow(v, w, 1, 1, schema="B")
        with pytest.raises(ProofError):
            compose(first, second)

    def test_requires_execution_closure(self):
        u, v, w = cls("U"), cls("V"), cls("W")
        first = arrow(u, v, 1, 1)
        second = arrow(v, w, 1, 1)
        with pytest.raises(ProofError):
            compose(first, second, schema_execution_closed=False)


class TestUnionRule:
    def test_adds_extra_to_both_sides(self):
        u, v, extra = cls("U"), cls("V"), cls("X")
        lifted = union_rule(arrow(u, v, 2, Fraction(1, 2)), extra)
        assert lifted.source == u | extra
        assert lifted.target == v | extra
        assert lifted.time_bound == 2
        assert lifted.probability == Fraction(1, 2)

    def test_absorbs_existing_atoms(self):
        u, v = cls("U"), cls("V")
        lifted = union_rule(arrow(u, v, 1, 1), v)
        assert lifted.target == v


class TestWeaken:
    def statement(self):
        return arrow(cls("U"), cls("V"), 5, Fraction(1, 2))

    def test_lower_probability_allowed(self):
        weakened = weaken(self.statement(), probability=Fraction(1, 4))
        assert weakened.probability == Fraction(1, 4)

    def test_raise_time_allowed(self):
        weakened = weaken(self.statement(), time_bound=10)
        assert weakened.time_bound == 10

    def test_no_change_is_identity(self):
        assert weaken(self.statement()) == self.statement()

    def test_raising_probability_rejected(self):
        with pytest.raises(ProofError):
            weaken(self.statement(), probability=Fraction(3, 4))

    def test_tightening_time_rejected(self):
        with pytest.raises(ProofError):
            weaken(self.statement(), time_bound=1)


class TestSourceTargetAdjustment:
    def test_strengthen_source_to_subset(self):
        u, x, v = cls("U"), cls("X"), cls("V")
        statement = arrow(u | x, v, 1, 1)
        restricted = strengthen_source(statement, u)
        assert restricted.source == u

    def test_strengthen_source_rejects_non_subset(self):
        statement = arrow(cls("U"), cls("V"), 1, 1)
        with pytest.raises(ProofError):
            strengthen_source(statement, cls("Z"))

    def test_widen_target_to_superset(self):
        u, v, w = cls("U"), cls("V"), cls("W")
        statement = arrow(u, v, 1, 1)
        widened = widen_target(statement, v | w)
        assert widened.target == v | w

    def test_widen_target_rejects_non_superset(self):
        statement = arrow(cls("U"), cls("V"), 1, 1)
        with pytest.raises(ProofError):
            widen_target(statement, cls("Z"))


class TestChain:
    def test_folds_left(self):
        a, b, c, d = cls("A"), cls("B"), cls("C"), cls("D")
        result = chain(
            [
                arrow(a, b, 1, Fraction(1, 2)),
                arrow(b, c, 2, Fraction(1, 2)),
                arrow(c, d, 3, Fraction(1, 2)),
            ]
        )
        assert result.source == a and result.target == d
        assert result.time_bound == 6
        assert result.probability == Fraction(1, 8)

    def test_single_statement_unchanged(self):
        statement = arrow(cls("A"), cls("B"), 1, 1)
        assert chain([statement]) == statement

    def test_empty_rejected(self):
        with pytest.raises(ProofError):
            chain([])
