"""Unit tests for the observability layer (:mod:`repro.obs`)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, Metrics, NoopMetrics
from repro.obs.sinks import (
    JsonlSink,
    jsonable,
    read_jsonl,
    render_metric_tables,
    render_span_tree,
)
from repro.obs.trace import NoopTracer, Tracer


def ticking_clock(step=1.0):
    """A deterministic clock advancing by ``step`` per call."""
    state = {"now": 0.0}

    def clock():
        now = state["now"]
        state["now"] = now + step
        return now

    return clock


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("outer") as outer:
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2") as inner:
                inner.annotate(key="value")
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == [
            "inner-1", "inner-2"
        ]
        assert outer.children[1].attributes == {"key": "value"}

    def test_durations_from_injected_clock(self):
        # Clock ticks once on enter and once on exit of each span:
        # the inner span lasts 1 tick, the outer one 3.
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        assert outer.children[0].duration == 1.0
        assert outer.duration == 3.0

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer(clock=ticking_clock())
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_sibling_roots(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_walk_yields_depths(self):
        tracer = Tracer(clock=ticking_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        depths = {span.name: depth for span, depth in tracer.walk()}
        assert depths == {"outer": 0, "inner": 1, "leaf": 2}

    def test_span_closed_even_on_exception(self):
        tracer = Tracer(clock=ticking_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.roots[0].duration is not None


class TestHistogram:
    def test_nearest_rank_percentiles(self):
        histogram = Histogram("t")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(50) == 50
        assert histogram.percentile(95) == 95
        assert histogram.percentile(99) == 99
        assert histogram.percentile(100) == 100
        assert histogram.percentile(1) == 1

    def test_percentile_of_unsorted_observations(self):
        histogram = Histogram("t")
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            histogram.observe(value)
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(95) == 5.0

    def test_single_observation(self):
        histogram = Histogram("t")
        histogram.observe(7)
        assert histogram.percentile(50) == 7.0
        assert histogram.mean == 7.0
        summary = histogram.summary()
        assert summary["min"] == summary["max"] == 7.0

    def test_empty_histogram_raises(self):
        histogram = Histogram("t")
        with pytest.raises(ObservabilityError):
            histogram.percentile(50)
        with pytest.raises(ObservabilityError):
            _ = histogram.mean
        assert histogram.summary() == {"count": 0}

    def test_percentile_bounds_checked(self):
        histogram = Histogram("t")
        histogram.observe(1)
        with pytest.raises(ObservabilityError):
            histogram.percentile(0)
        with pytest.raises(ObservabilityError):
            histogram.percentile(101)


class TestMetrics:
    def test_counter_accumulates(self):
        metrics = Metrics()
        metrics.counter("a").inc()
        metrics.counter("a").inc(4)
        assert metrics.counter("a").value == 5

    def test_counter_rejects_decrease(self):
        metrics = Metrics()
        with pytest.raises(ObservabilityError):
            metrics.counter("a").inc(-1)

    def test_gauge_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("g").set(3)
        metrics.gauge("g").set(9)
        assert metrics.gauge("g").value == 9

    def test_name_bound_to_one_kind(self):
        metrics = Metrics()
        metrics.counter("x")
        with pytest.raises(ObservabilityError):
            metrics.histogram("x")

    def test_snapshot_shape(self):
        metrics = Metrics()
        metrics.counter("c").inc(2)
        metrics.gauge("g").set(1.5)
        metrics.histogram("h").observe(3)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1


class TestNoopRegistry:
    def test_default_registry_is_noop(self):
        assert not obs.enabled()
        assert isinstance(obs.get_registry().metrics, NoopMetrics)
        assert isinstance(obs.get_registry().tracer, NoopTracer)

    def test_noop_helpers_record_nothing(self):
        registry = obs.get_registry()
        obs.incr("some.counter", 10)
        obs.gauge("some.gauge", 1)
        obs.observe("some.histogram", 2)
        with obs.span("some.span", key="value") as span:
            span.annotate(more="attrs")
        assert obs.get_registry() is registry
        assert registry.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_noop_span_is_shared_and_reentrant(self):
        with obs.span("a") as first:
            with obs.span("b") as second:
                assert first is second

    def test_recording_installs_and_restores(self):
        assert not obs.enabled()
        with obs.recording() as registry:
            assert obs.enabled()
            assert obs.get_registry() is registry
            obs.incr("counter", 3)
        assert not obs.enabled()
        assert registry.metrics.counter("counter").value == 3

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError("boom")
        assert not obs.enabled()

    def test_nested_recordings(self):
        with obs.recording() as outer:
            obs.incr("c")
            with obs.recording() as inner:
                obs.incr("c")
            obs.incr("c")
        assert outer.metrics.counter("c").value == 2
        assert inner.metrics.counter("c").value == 1


class TestJsonlRoundTrip:
    def test_spans_and_metrics_round_trip(self, tmp_path):
        with obs.recording(clock=ticking_clock()) as registry:
            with obs.span("outer", n=3):
                with obs.span("inner"):
                    obs.incr("counter", 2)
                    obs.gauge("gauge", 1.5)
                    obs.observe("histogram", 4.0)
        path = tmp_path / "run.jsonl"
        written = JsonlSink(path).write_run(
            registry, reports=[{"kind": "smoke", "ok": True}]
        )
        records = read_jsonl(path)
        assert len(records) == written == 6
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        spans = by_type["span"]
        assert [span["name"] for span in spans] == ["outer", "inner"]
        assert spans[0]["parent"] is None
        assert spans[1]["parent"] == spans[0]["id"]
        assert spans[0]["attributes"] == {"n": 3}
        assert by_type["counter"][0] == {
            "type": "counter", "name": "counter", "value": 2
        }
        assert by_type["gauge"][0]["value"] == 1.5
        assert by_type["histogram"][0]["summary"]["count"] == 1
        assert by_type["report"][0]["kind"] == "smoke"

    def test_every_line_is_valid_json(self, tmp_path):
        with obs.recording() as registry:
            with obs.span("s", state=object()):
                obs.incr("c")
        path = tmp_path / "run.jsonl"
        JsonlSink(path).write_run(registry)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_append_semantics(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.write([{"type": "counter", "name": "a", "value": 1}])
        sink.write([{"type": "counter", "name": "b", "value": 2}])
        assert [record["name"] for record in read_jsonl(path)] == ["a", "b"]

    def test_jsonable_coercions(self):
        from fractions import Fraction

        assert jsonable(Fraction(1, 8)) == "1/8"
        assert jsonable((1, "two", Fraction(3, 4))) == [1, "two", "3/4"]
        assert jsonable({1: Fraction(1, 2)}) == {"1": "1/2"}
        assert jsonable(None) is None
        assert isinstance(jsonable(object()), str)


class TestRendering:
    def test_span_tree_rendering(self):
        with obs.recording(clock=ticking_clock()) as registry:
            with obs.span("outer", n=3):
                with obs.span("inner"):
                    pass
        text = render_span_tree(registry.tracer)
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert "n=3" in lines[0]
        assert lines[1].startswith("  inner")

    def test_metric_tables_rendering(self):
        with obs.recording() as registry:
            obs.incr("counter.one", 5)
            obs.gauge("gauge.one", 2)
            for value in [1.0, 2.0, 3.0]:
                obs.observe("histogram.one", value)
        text = render_metric_tables(registry.metrics)
        assert "counter.one" in text and "5" in text
        assert "gauge.one" in text
        assert "histogram.one" in text and "p95" in text

    def test_empty_rendering(self):
        registry = obs.recording_registry()
        assert render_span_tree(registry.tracer) == "(no spans recorded)"
        assert render_metric_tables(registry.metrics) == \
            "(no metrics recorded)"


class TestInstrumentedCallSites:
    def test_sampler_records_samples_and_steps(self):
        import random

        from repro.algorithms.coins import (
            FLIP_P,
            both_flip_adversary,
            p_heads,
            two_coin_automaton,
        )
        from repro.automaton.execution import ExecutionFragment
        from repro.events.first import FirstOccurrence
        from repro.execution.sampler import sample_event

        automaton = two_coin_automaton()
        schema = FirstOccurrence(FLIP_P, p_heads)
        start = ExecutionFragment.initial((None, None))
        with obs.recording() as registry:
            for _ in range(10):
                sample_event(
                    automaton, both_flip_adversary(), start, schema,
                    random.Random(0), max_steps=10,
                )
        counters = registry.metrics.snapshot()["counters"]
        assert counters["sampler.samples"] == 10
        assert counters["fragment.extensions"] >= counters["sampler.steps"]
        assert registry.metrics.histogram(
            "sampler.steps_per_sample"
        ).count == 10

    def test_ledger_counts_rule_applications(self):
        from repro.algorithms import lehmann_rabin as lr

        with obs.recording() as registry:
            lr.lehmann_rabin_proof()
        counters = registry.metrics.snapshot()["counters"]
        assert counters["ledger.rule.assume"] == 5
        assert counters["ledger.rule.compose"] == 4
        assert counters["ledger.applications"] >= 12

    def test_value_iteration_records_residuals(self):
        from fractions import Fraction

        from repro.automaton.automaton import ExplicitAutomaton
        from repro.automaton.signature import ActionSignature
        from repro.automaton.transition import Transition
        from repro.mdp.value_iteration import unbounded_reachability
        from repro.probability.space import FiniteDistribution

        # A two-state chain flipping to an absorbing goal w.p. 1/2.
        signature = ActionSignature(external=frozenset({"flip"}))
        transition = Transition(
            "s", "flip",
            FiniteDistribution({"s": Fraction(1, 2), "goal": Fraction(1, 2)}),
        )
        automaton = ExplicitAutomaton(
            states=("s", "goal"),
            start_states=("s",),
            signature=signature,
            steps=(transition,),
        )
        with obs.recording() as registry:
            value = unbounded_reachability(
                automaton, lambda state: state == "goal", "s"
            )
        assert value == pytest.approx(1.0)
        assert registry.metrics.counter("mdp.value_iteration.sweeps").value > 0
        assert registry.metrics.histogram(
            "mdp.value_iteration.residual"
        ).count > 0
        names = [span.name for span, _ in registry.tracer.walk()]
        assert "mdp.value_iteration" in names


class TestMetricCatalog:
    """The declared-names catalog and its documentation stay in sync."""

    def test_every_name_declares_a_kind_and_description(self):
        from repro.obs import names

        kinds = {"counter", "gauge", "histogram"}
        for name, (kind, description) in names.METRICS.items():
            assert kind in kinds, name
            assert description, name
        for prefix, (kind, description) in names.DYNAMIC_PREFIXES.items():
            assert prefix.endswith("."), prefix
            assert kind in kinds and description, prefix

    def test_declared_matches_exact_names_and_prefixes(self):
        from repro.obs import names

        assert names.declared("verifier.samples")
        assert names.declared("ledger.rule.anything")
        assert not names.declared("verifier.samplez")
        assert not names.declared("ledger.rule")

    def test_docs_embed_the_generated_catalog(self):
        from pathlib import Path

        from repro.obs import names

        doc = Path(__file__).parent.parent / "docs" / "observability.md"
        text = doc.read_text()
        begin = "<!-- metric-catalog:begin -->"
        end = "<!-- metric-catalog:end -->"
        assert begin in text and end in text
        embedded = text.split(begin, 1)[1].split(end, 1)[0].strip()
        assert embedded == names.catalog_markdown().strip(), (
            "docs/observability.md catalog is stale — regenerate with "
            "python -m repro.obs.names"
        )
