"""Unit tests for the Ben-Or consensus case study."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import benor as bo
from repro.algorithms.benor.automaton import (
    BenOrProcess,
    BenOrState,
    Phase,
    benor_process_transitions,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import AutomatonError, ProofError
from repro.execution.sampler import sample_time_until


def run_walk(inputs, policy, steps, seed, f=None):
    automaton = bo.benor_automaton(inputs, f=f)
    adversary = RoundBasedAdversary(
        bo.BenOrProcessView(len(inputs)), policy
    )
    rng = random.Random(seed)
    fragment = ExecutionFragment.initial(bo.benor_initial_state(inputs))
    for _ in range(steps):
        step = adversary.checked_choose(automaton, fragment)
        if step is None:
            break
        fragment = fragment.extend(step.action, step.target.sample(rng))
    return fragment


class TestModel:
    def test_binary_inputs_enforced(self):
        with pytest.raises(AutomatonError):
            bo.benor_initial_state((0, 2, 1))

    def test_needs_n_greater_than_2f(self):
        with pytest.raises(AutomatonError):
            bo.benor_automaton((0, 1), f=1)

    def test_default_crash_budget(self):
        automaton = bo.benor_automaton((0, 1, 1))
        state = bo.benor_initial_state((0, 1, 1))
        crash_steps = [
            s for s in automaton.transitions(state) if s.action[0] == bo.CRASH
        ]
        assert len(crash_steps) == 3  # f = 1: anyone may crash first

    def test_crash_budget_exhausts(self):
        automaton = bo.benor_automaton((0, 1, 1), f=1)
        state = bo.benor_initial_state((0, 1, 1))
        (crash0,) = [
            s for s in automaton.transitions(state)
            if s.action == (bo.CRASH, 0)
        ]
        after = crash0.target.the_point()
        assert not any(
            s.action[0] == bo.CRASH for s in automaton.transitions(after)
        )

    def test_send1_posts_report_and_advances(self):
        state = bo.benor_initial_state((1, 0, 1))
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.SEND1, 0)
        ]
        after = step.target.the_point()
        assert (1, 1, 0, 1) in after.messages
        assert after.processes[0].phase is Phase.COLLECT1

    def test_collect1_busy_waits_without_quorum(self):
        state = bo.benor_initial_state((1, 0, 1))
        state = state.with_process(
            0, BenOrProcess(Phase.COLLECT1, 1, 1, None, None, False)
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.COLLECT1, 0)
        ]
        assert step.target.the_point() == state

    def test_collect1_majority_proposes_value(self):
        state = bo.benor_initial_state((1, 1, 0))
        state = BenOrState(
            processes=(
                BenOrProcess(Phase.COLLECT1, 1, 1, None, None, False),
            ) + state.processes[1:],
            messages=frozenset({(1, 1, 0, 1), (1, 1, 1, 1), (1, 1, 2, 0)}),
            time=state.time,
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.COLLECT1, 0)
        ]
        after = step.target.the_point()
        assert after.processes[0].phase is Phase.SEND2
        assert after.processes[0].proposal == 1

    def test_collect1_split_proposes_question_mark(self):
        state = bo.benor_initial_state((1, 0, 1))
        state = BenOrState(
            processes=(
                BenOrProcess(Phase.COLLECT1, 1, 1, None, None, False),
            ) + state.processes[1:],
            messages=frozenset({(1, 1, 0, 1), (1, 1, 2, 0)}),
            time=state.time,
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.COLLECT1, 0)
        ]
        assert step.target.the_point().processes[0].proposal is None

    def test_collect2_decides_on_f_plus_1_proposals(self):
        state = bo.benor_initial_state((1, 1, 0))
        state = BenOrState(
            processes=(
                BenOrProcess(Phase.COLLECT2, 1, 1, 1, None, False),
            ) + state.processes[1:],
            messages=frozenset({(2, 1, 0, 1), (2, 1, 1, 1)}),
            time=state.time,
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.COLLECT2, 0)
        ]
        after = step.target.the_point()
        assert after.processes[0].decided == 1
        assert after.processes[0].round == 2
        assert after.processes[0].phase is Phase.SEND1

    def test_collect2_adopts_single_proposal(self):
        state = bo.benor_initial_state((1, 1, 0))
        state = BenOrState(
            processes=(
                BenOrProcess(Phase.COLLECT2, 1, 0, None, None, False),
            ) + state.processes[1:],
            messages=frozenset({(2, 1, 0, None), (2, 1, 1, 1)}),
            time=state.time,
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.COLLECT2, 0)
        ]
        after = step.target.the_point()
        assert after.processes[0].decided is None
        assert after.processes[0].value == 1

    def test_collect2_flips_fair_coin_without_proposals(self):
        state = bo.benor_initial_state((1, 1, 0))
        state = BenOrState(
            processes=(
                BenOrProcess(Phase.COLLECT2, 1, 0, None, None, False),
            ) + state.processes[1:],
            messages=frozenset({(2, 1, 0, None), (2, 1, 1, None)}),
            time=state.time,
        )
        (step,) = [
            s for s in benor_process_transitions(state, 0, 1)
            if s.action == (bo.FLIP, 0)
        ]
        values = {s.processes[0].value for s in step.target.support}
        assert values == {0, 1}
        for _, weight in step.target.items():
            assert weight == Fraction(1, 2)

    def test_crashed_process_has_no_steps(self):
        state = bo.benor_initial_state((1, 0, 1))
        crashed = state.with_process(
            0, BenOrProcess(Phase.SEND1, 1, 1, None, None, True)
        )
        assert benor_process_transitions(crashed, 0, 1) == []


class TestProperties:
    @pytest.mark.parametrize(
        "inputs", [(0, 0, 0), (1, 1, 1), (0, 1, 1), (1, 0, 1, 0, 1)]
    )
    def test_agreement_and_validity_along_runs(self, inputs):
        for seed in (0, 1):
            fragment = run_walk(
                inputs, HashedRandomRoundPolicy(seed), 300, seed
            )
            for state in fragment.states:
                assert bo.agreement_holds(state)
                assert bo.validity_holds(state, inputs)

    @pytest.mark.parametrize("inputs", [(0, 0, 0), (1, 1, 1)])
    def test_unanimous_inputs_decide_round_one(self, inputs):
        automaton = bo.benor_automaton(inputs)
        adversary = RoundBasedAdversary(
            bo.BenOrProcessView(3), FifoRoundPolicy()
        )
        elapsed = sample_time_until(
            automaton,
            adversary,
            ExecutionFragment.initial(bo.benor_initial_state(inputs)),
            bo.all_live_decided,
            bo.benor_time_of,
            random.Random(0),
            2_000,
        )
        assert elapsed is not None and elapsed <= 4
        # And the decision is the common input (validity).
        fragment = run_walk(inputs, FifoRoundPolicy(), 40, 0)
        decided = {
            p.decided
            for p in fragment.lstate.processes
            if p.decided is not None
        }
        assert decided == {inputs[0]}

    def test_termination_with_mixed_inputs(self):
        automaton = bo.benor_automaton((0, 1, 0))
        for policy in (FifoRoundPolicy(), ReversedRoundPolicy()):
            adversary = RoundBasedAdversary(bo.BenOrProcessView(3), policy)
            rng = random.Random(7)
            for _ in range(10):
                elapsed = sample_time_until(
                    automaton,
                    adversary,
                    ExecutionFragment.initial(bo.benor_initial_state((0, 1, 0))),
                    bo.some_decided,
                    bo.benor_time_of,
                    rng,
                    5_000,
                )
                assert elapsed is not None

    def test_termination_despite_a_crash(self):
        class CrashEarly(FifoRoundPolicy):
            def next_move(self, automaton, fragment, pending, view):
                state = fragment.lstate
                if state.crashed_count() < 1:
                    for step in automaton.transitions(state):
                        if step.action == (bo.CRASH, 2):
                            return step
                return super().next_move(
                    automaton, fragment, pending, view
                )

        automaton = bo.benor_automaton((0, 1, 1), f=1)
        adversary = RoundBasedAdversary(
            bo.BenOrProcessView(3), CrashEarly()
        )
        elapsed = sample_time_until(
            automaton,
            adversary,
            ExecutionFragment.initial(bo.benor_initial_state((0, 1, 1))),
            bo.some_decided,
            bo.benor_time_of,
            random.Random(3),
            5_000,
        )
        assert elapsed is not None


class TestCoinPath:
    def test_split_vote_after_crash_uses_coins_and_terminates(self):
        """Crashing a 0-voter immediately leaves live inputs (1, 0):
        no majority, proposals all '?', so progress comes from the
        coins — and Ben-Or still terminates, in randomized time."""

        class CrashNow(FifoRoundPolicy):
            def next_move(self, automaton, fragment, pending, view):
                state = fragment.lstate
                if state.crashed_count() < 1:
                    for step in automaton.transitions(state):
                        if step.action == (bo.CRASH, 0):
                            return step
                return super().next_move(
                    automaton, fragment, pending, view
                )

        inputs = (0, 1, 0)
        automaton = bo.benor_automaton(inputs)
        adversary = RoundBasedAdversary(bo.BenOrProcessView(3), CrashNow())
        rng = random.Random(0)
        flips_seen = 0
        decision_times = []
        for _ in range(20):
            fragment = ExecutionFragment.initial(
                bo.benor_initial_state(inputs)
            )
            elapsed = None
            for _ in range(3_000):
                step = adversary.checked_choose(automaton, fragment)
                fragment = fragment.extend(
                    step.action, step.target.sample(rng)
                )
                if step.action[0] == bo.FLIP:
                    flips_seen += 1
                assert bo.agreement_holds(fragment.lstate)
                if bo.some_decided(fragment.lstate):
                    elapsed = bo.benor_time_of(fragment.lstate)
                    break
            assert elapsed is not None
            decision_times.append(elapsed)
        assert flips_seen > 0  # the coin path genuinely ran
        # Randomized termination: slower than the majority path (3)
        # but still well within the retry bound.
        assert max(decision_times) > 3
        mean = float(sum(decision_times) / len(decision_times))
        assert mean <= float(bo.benor_expected_time_bound(3))


class TestClaims:
    def test_progress_statement_shape(self):
        statement = bo.benor_progress_statement(3)
        assert statement.time_bound == 10
        assert statement.probability == Fraction(1, 8)
        assert statement.source == bo.INIT_CLASS
        assert statement.target == bo.DECIDED_CLASS

    def test_initial_state_is_in_init(self):
        assert bo.INIT_CLASS.contains(bo.benor_initial_state((0, 1, 0)))

    def test_started_state_leaves_init(self):
        fragment = run_walk((0, 1, 0), FifoRoundPolicy(), 3, 0)
        assert not bo.INIT_CLASS.contains(fragment.lstate)

    def test_expected_time_bound(self):
        assert bo.benor_expected_time_bound(3) == 80

    def test_minimum_size(self):
        with pytest.raises(ProofError):
            bo.benor_progress_statement(1)
