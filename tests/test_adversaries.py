"""Unit tests for adversaries, shifting, and schemas."""

from __future__ import annotations

import pytest

from repro.adversary.base import (
    AdversarySchema,
    FunctionAdversary,
    ShiftedAdversary,
    all_adversaries_schema,
    check_execution_closure_on_samples,
    shift,
)
from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    RoundRobinAdversary,
    SequenceAdversary,
    StatePolicyAdversary,
    StoppingAdversary,
)
from repro.automaton.execution import ExecutionFragment
from repro.automaton.transition import Transition
from repro.errors import AdversaryError


def initial(state):
    return ExecutionFragment.initial(state)


class TestContract:
    def test_checked_choose_accepts_enabled_step(self, branching_automaton):
        adversary = FirstEnabledAdversary()
        step = adversary.checked_choose(branching_automaton, initial("s0"))
        assert step in branching_automaton.transitions("s0")

    def test_checked_choose_rejects_wrong_source(self, branching_automaton):
        rogue = FunctionAdversary(
            lambda auto, frag: auto.transitions("s0")[0], name="rogue"
        )
        with pytest.raises(AdversaryError):
            rogue.checked_choose(branching_automaton, initial("s1"))

    def test_checked_choose_rejects_foreign_step(self, branching_automaton):
        foreign = Transition.deterministic("s0", "a", "s0")
        rogue = FunctionAdversary(lambda auto, frag: foreign, name="rogue")
        with pytest.raises(AdversaryError):
            rogue.checked_choose(branching_automaton, initial("s0"))

    def test_none_means_halt(self, branching_automaton):
        halting = FunctionAdversary(lambda auto, frag: None, name="halting")
        assert halting.checked_choose(branching_automaton, initial("s0")) is None


class TestDeterministicAdversaries:
    def test_first_enabled_picks_first(self, branching_automaton):
        step = FirstEnabledAdversary().choose(branching_automaton, initial("s0"))
        assert step.action == "a"

    def test_first_enabled_halts_at_terminal(self, branching_automaton):
        assert FirstEnabledAdversary().choose(
            branching_automaton, initial("s1")
        ) is None

    def test_round_robin_cycles_by_history_length(self, branching_automaton):
        adversary = RoundRobinAdversary()
        fragment0 = initial("s0")
        assert adversary.choose(branching_automaton, fragment0).action == "a"
        fragment1 = fragment0.extend("a", "s1").extend("x", "s0")
        # Two steps of history selects index 2 mod 2 = 0 again; use a
        # one-step fragment for index 1.
        one_step = initial("s0").extend("a", "s0")
        assert adversary.choose(branching_automaton, one_step).action == "b"

    def test_stopping_adversary_halts_after_budget(self, coin_walk):
        adversary = StoppingAdversary(FirstEnabledAdversary(), max_steps=2)
        fragment = initial("start").extend("hop1", "start").extend("hop1", "middle")
        assert adversary.choose(coin_walk, fragment) is None

    def test_stopping_adversary_delegates_before_budget(self, coin_walk):
        adversary = StoppingAdversary(FirstEnabledAdversary(), max_steps=2)
        assert adversary.choose(coin_walk, initial("start")) is not None

    def test_stopping_adversary_rejects_negative_budget(self):
        with pytest.raises(AdversaryError):
            StoppingAdversary(FirstEnabledAdversary(), max_steps=-1)

    def test_sequence_adversary_plays_indices(self, branching_automaton):
        adversary = SequenceAdversary([1, 0])
        step = adversary.choose(branching_automaton, initial("s0"))
        assert step.action == "b"

    def test_sequence_adversary_halts_when_exhausted(self, branching_automaton):
        adversary = SequenceAdversary([])
        assert adversary.choose(branching_automaton, initial("s0")) is None

    def test_sequence_adversary_rejects_negative_indices(self):
        with pytest.raises(AdversaryError):
            SequenceAdversary([-1])

    def test_state_policy_adversary(self, branching_automaton):
        adversary = StatePolicyAdversary(
            lambda s: 1 if s == "s0" else None
        )
        assert adversary.choose(branching_automaton, initial("s0")).action == "b"

    def test_state_policy_halt(self, branching_automaton):
        adversary = StatePolicyAdversary(lambda s: None)
        assert adversary.choose(branching_automaton, initial("s0")) is None

    def test_state_policy_out_of_range_rejected(self, branching_automaton):
        adversary = StatePolicyAdversary(lambda s: 5)
        with pytest.raises(AdversaryError):
            adversary.choose(branching_automaton, initial("s0"))


class TestShifting:
    def test_shifted_agrees_with_definition(self, coin_walk):
        base = RoundRobinAdversary()
        prefix = initial("start").extend("hop1", "middle")
        shifted = shift(base, prefix)
        probe = initial("middle")
        assert shifted.choose(coin_walk, probe) == base.choose(
            coin_walk, prefix.concat(probe)
        )

    def test_shift_requires_matching_fstate(self, coin_walk):
        shifted = shift(RoundRobinAdversary(), initial("start"))
        with pytest.raises(AdversaryError):
            shifted.choose(coin_walk, initial("middle"))

    def test_shifting_twice_composes_prefixes(self, coin_walk):
        base = RoundRobinAdversary()
        first = initial("start").extend("hop1", "middle")
        second = initial("middle").extend("hop2", "goal")
        twice = shift(shift(base, first), second)
        assert isinstance(twice, ShiftedAdversary)
        assert twice.base is base
        assert twice.prefix == first.concat(second)


class TestSchemas:
    def test_all_adversaries_schema(self):
        schema = all_adversaries_schema()
        assert schema.execution_closed
        assert schema.contains(FirstEnabledAdversary())

    def test_membership_check_raises(self):
        schema = AdversarySchema(
            name="none", contains=lambda a: False, execution_closed=False
        )
        with pytest.raises(AdversaryError):
            schema.check_membership(FirstEnabledAdversary())

    def test_with_generators_validates_membership(self):
        schema = all_adversaries_schema()
        enriched = schema.with_generators([FirstEnabledAdversary()])
        assert len(enriched.generators) == 1

    def test_with_generators_rejects_outsiders(self):
        schema = AdversarySchema(
            name="none", contains=lambda a: False, execution_closed=False
        )
        with pytest.raises(AdversaryError):
            schema.with_generators([FirstEnabledAdversary()])

    def test_closure_probe_passes_for_all_schema(self, coin_walk):
        schema = all_adversaries_schema()
        prefix = initial("start").extend("hop1", "middle")
        probe = initial("middle")
        assert check_execution_closure_on_samples(
            schema, coin_walk,
            adversaries=[RoundRobinAdversary(), FirstEnabledAdversary()],
            prefixes=[prefix],
            probes=[probe],
        )

    def test_closure_probe_detects_non_closed_schema(self, coin_walk):
        # A schema that excludes shifted wrappers fails the probe.
        schema = AdversarySchema(
            name="raw-only",
            contains=lambda a: not isinstance(a, ShiftedAdversary),
            execution_closed=False,
        )
        prefix = initial("start").extend("hop1", "middle")
        assert not check_execution_closure_on_samples(
            schema, coin_walk,
            adversaries=[FirstEnabledAdversary()],
            prefixes=[prefix],
            probes=[initial("middle")],
        )
