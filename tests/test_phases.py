"""Unit tests for the Section 6.2 phase decomposition."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import FifoRoundPolicy, RoundBasedAdversary
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.state import PC, ProcessState, Side
from repro.algorithms.lehmann_rabin.phases import (
    FAIL_FOURTH,
    FAIL_THIRD,
    SUCCESS,
    PhaseOutcome,
    PhaseStatistics,
    classify_attempt,
    sample_phase_statistics,
)
from repro.errors import VerificationError


def ring(*locals_):
    return lr.make_state(list(locals_))


def timed(state, t):
    return state.with_time(Fraction(t))


R = lambda: ProcessState(PC.R, Side.LEFT)


class TestClassifyAttempt:
    def test_immediate_success_through_gp(self):
        # Start already in G; P reached one unit later.
        g_state = ring(ProcessState(PC.W, Side.LEFT), R(), R())
        p_state = timed(
            ring(ProcessState(PC.P, Side.LEFT), R(), R()), 1
        )
        outcome = classify_attempt([g_state, p_state])
        assert outcome == PhaseOutcome(branch=SUCCESS, time_spent=Fraction(1))

    def test_success_entering_through_f(self):
        f_state = ring(ProcessState(PC.F, Side.LEFT), R(), R())
        g_state = timed(ring(ProcessState(PC.W, Side.LEFT), R(), R()), 1)
        p_state = timed(ring(ProcessState(PC.P, Side.LEFT), R(), R()), 3)
        outcome = classify_attempt([f_state, g_state, p_state])
        assert outcome.branch == SUCCESS
        assert outcome.time_spent == 3

    def test_failure_at_third_arrow(self):
        # Enter F at time 0; still outside G|P when the 2-unit window
        # closes (witnessed by a state past time 2).
        f0 = ring(ProcessState(PC.F, Side.LEFT), R(), R())
        contended = ring(
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.LEFT),
        )
        later = timed(contended, 3)
        outcome = classify_attempt([f0, timed(contended, 1), later])
        assert outcome.branch == FAIL_THIRD
        assert outcome.time_spent == 3

    def test_failure_at_fourth_arrow(self):
        g0 = ring(ProcessState(PC.W, Side.LEFT), R(), R())
        still_g = timed(g0, 6)
        outcome = classify_attempt([g0, timed(g0, 2), still_g])
        assert outcome.branch == FAIL_FOURTH
        assert outcome.time_spent == 6

    def test_unresolved_returns_none(self):
        g0 = ring(ProcessState(PC.W, Side.LEFT), R(), R())
        assert classify_attempt([g0, timed(g0, 2)]) is None

    def test_entry_deadline_measured_from_start(self):
        # RT state not yet in F|G|P (everyone contended W pointing the
        # same way is in RT; check it is really outside F|G|P first).
        contended = ring(
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.LEFT),
        )
        assert lr.in_reduced_trying(contended)
        assert not (
            lr.in_flip_ready(contended) or lr.in_good(contended)
            or lr.in_pre_critical(contended)
        )
        f_late = timed(
            ring(ProcessState(PC.F, Side.LEFT), R(), R()), 2
        )
        p_soon = timed(
            ring(ProcessState(PC.P, Side.LEFT), R(), R()), 3
        )
        outcome = classify_attempt([contended, f_late, p_soon])
        assert outcome.branch == SUCCESS
        assert outcome.time_spent == 3


class TestStatistics:
    def outcomes(self):
        return PhaseStatistics(
            outcomes=(
                PhaseOutcome(SUCCESS, Fraction(4)),
                PhaseOutcome(SUCCESS, Fraction(6)),
                PhaseOutcome(FAIL_THIRD, Fraction(5)),
                PhaseOutcome(FAIL_FOURTH, Fraction(9)),
            )
        )

    def test_frequencies(self):
        stats = self.outcomes()
        assert stats.frequency(SUCCESS) == 0.5
        assert stats.frequency(FAIL_THIRD) == 0.25

    def test_max_time(self):
        stats = self.outcomes()
        assert stats.max_time(SUCCESS) == 6
        assert stats.max_time("missing-branch") == 0

    def test_coefficient_check(self):
        assert self.outcomes().respects_recursion_coefficients()

    def test_empty_rejected(self):
        with pytest.raises(VerificationError):
            PhaseStatistics(outcomes=()).frequency(SUCCESS)


class TestSampling:
    def test_sampled_statistics_fit_the_recursion(self):
        automaton = lr.lehmann_rabin_automaton(3)
        view = lr.LRProcessView(3)
        rng = random.Random(1)
        starts = lr.sample_states_in(lr.RT_CLASS, 3, 4, rng)
        for policy in (FifoRoundPolicy(), HashedRandomRoundPolicy(2)):
            adversary = RoundBasedAdversary(view, policy)
            stats = sample_phase_statistics(
                automaton, adversary, starts, rng, attempts=120
            )
            assert stats.respects_recursion_coefficients()
            # Branch time caps from the paper's accounting.
            assert stats.max_time(SUCCESS) <= 10
            assert stats.max_time(FAIL_THIRD) <= 6
            assert stats.max_time(FAIL_FOURTH) <= 11

    def test_no_starts_rejected(self):
        automaton = lr.lehmann_rabin_automaton(3)
        adversary = RoundBasedAdversary(
            lr.LRProcessView(3), FifoRoundPolicy()
        )
        with pytest.raises(VerificationError):
            sample_phase_statistics(
                automaton, adversary, [], random.Random(0)
            )
