"""Unit tests for the Monte-Carlo execution sampler."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.deterministic import (
    FirstEnabledAdversary,
    StoppingAdversary,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import VerificationError
from repro.events.first import FirstOccurrence
from repro.events.reach import EventuallyReach, ReachWithinSteps
from repro.execution.sampler import (
    sample_event,
    sample_time_until,
    trim_fragment,
)


def initial(state):
    return ExecutionFragment.initial(state)


class TestSampleEvent:
    def test_decided_accept(self, coin_walk):
        rng = random.Random(0)
        result = sample_event(
            coin_walk, FirstEnabledAdversary(), initial("start"),
            EventuallyReach(lambda s: s == "goal"), rng, max_steps=1000,
        )
        assert result.verdict is True
        assert not result.truncated

    def test_decided_reject(self, coin_walk):
        rng = random.Random(0)
        result = sample_event(
            coin_walk, FirstEnabledAdversary(), initial("start"),
            ReachWithinSteps(lambda s: False, 3), rng, max_steps=1000,
        )
        assert result.verdict is False

    def test_truncation_reports_none(self):
        from repro.automaton.automaton import ExplicitAutomaton
        from repro.automaton.signature import ActionSignature
        from repro.automaton.transition import Transition

        loop = ExplicitAutomaton(
            ["a"], ["a"],
            ActionSignature(internal={"spin"}),
            [Transition.deterministic("a", "spin", "a")],
        )
        rng = random.Random(0)
        result = sample_event(
            loop, FirstEnabledAdversary(), initial("a"),
            EventuallyReach(lambda s: False), rng, max_steps=5,
        )
        assert result.verdict is None
        assert result.truncated
        assert result.steps == 5

    def test_halting_adversary_triggers_maximal_rule(self, coin_walk):
        rng = random.Random(0)
        result = sample_event(
            coin_walk,
            StoppingAdversary(FirstEnabledAdversary(), max_steps=0),
            initial("start"),
            FirstOccurrence("hop1", lambda s: False),
            rng,
            max_steps=100,
        )
        # hop1 never occurred, so first(...) holds vacuously.
        assert result.verdict is True

    def test_seed_determinism(self, coin_walk):
        schema = ReachWithinSteps(lambda s: s == "goal", 6)
        runs = []
        for _ in range(2):
            rng = random.Random(42)
            runs.append(
                [
                    sample_event(
                        coin_walk, FirstEnabledAdversary(), initial("start"),
                        schema, rng, 50,
                    ).verdict
                    for _ in range(20)
                ]
            )
        assert runs[0] == runs[1]

    def test_frequency_matches_exact_probability(self, coin_walk):
        # P[reach goal within 4 steps] = 11/16 = 0.6875.
        schema = ReachWithinSteps(lambda s: s == "goal", 4)
        rng = random.Random(7)
        hits = sum(
            sample_event(
                coin_walk, FirstEnabledAdversary(), initial("start"),
                schema, rng, 50,
            ).verdict
            for _ in range(3000)
        )
        assert 0.66 < hits / 3000 < 0.72

    def test_negative_budget_rejected(self, coin_walk):
        with pytest.raises(VerificationError):
            sample_event(
                coin_walk, FirstEnabledAdversary(), initial("start"),
                EventuallyReach(lambda s: False), random.Random(0), -1,
            )


class TestSampleTimeUntil:
    @staticmethod
    def step_time(state):
        # The coin_walk is untimed; count nothing (time stays 0).
        return Fraction(0)

    def test_already_at_target_is_zero(self, coin_walk):
        elapsed = sample_time_until(
            coin_walk, FirstEnabledAdversary(), initial("goal"),
            lambda s: s == "goal", self.step_time, random.Random(0), 10,
        )
        assert elapsed == 0

    def test_reaches_and_reports_elapsed(self, coin_walk):
        elapsed = sample_time_until(
            coin_walk, FirstEnabledAdversary(), initial("start"),
            lambda s: s == "goal", self.step_time, random.Random(0), 10_000,
        )
        assert elapsed == 0  # untimed clock never advances

    def test_unreached_returns_none(self, coin_walk):
        elapsed = sample_time_until(
            coin_walk, FirstEnabledAdversary(), initial("start"),
            lambda s: False, self.step_time, random.Random(0), 20,
        )
        assert elapsed is None

    def test_halting_adversary_returns_none(self, coin_walk):
        elapsed = sample_time_until(
            coin_walk,
            StoppingAdversary(FirstEnabledAdversary(), max_steps=0),
            initial("start"),
            lambda s: s == "goal", self.step_time, random.Random(0), 100,
        )
        assert elapsed is None

    def test_timed_clock_measured_from_start_fragment(self):
        from repro.algorithms import lehmann_rabin as lr
        from repro.adversary.unit_time import (
            FifoRoundPolicy,
            RoundBasedAdversary,
        )

        n = 3
        automaton = lr.lehmann_rabin_automaton(n)
        adversary = RoundBasedAdversary(
            lr.LRProcessView(n), FifoRoundPolicy()
        )
        start = lr.canonical_states(n)["pre_critical"]
        elapsed = sample_time_until(
            automaton, adversary, initial(start), lr.in_critical,
            lr.lr_time_of, random.Random(0), 100,
        )
        # A pre-critical process takes crit within its first round.
        assert elapsed == 0

    def test_negative_budget_rejected(self, coin_walk):
        with pytest.raises(VerificationError):
            sample_time_until(
                coin_walk, FirstEnabledAdversary(), initial("start"),
                lambda s: False, self.step_time, random.Random(0), -2,
            )


class TestTrim:
    def test_trim_restarts_at_last_state(self):
        fragment = initial("a").extend("x", "b").extend("y", "c")
        assert trim_fragment(fragment) == initial("c")
