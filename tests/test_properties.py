"""Property-based tests (hypothesis) for the core data structures.

These check the algebraic laws the rest of the library leans on:
distribution transformations preserve mass, fragment concatenation and
prefixes interact correctly, event classifiers are monotone along
executions, the statement algebra matches its intended semantics, and
the retry-recursion solver agrees with direct simulation.
"""

from __future__ import annotations

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automaton.execution import ExecutionFragment
from repro.events.first import FirstOccurrence
from repro.events.next_first import NextFirstOccurrence
from repro.events.reach import ReachWithinSteps
from repro.events.schema import EventStatus
from repro.probability.space import FiniteDistribution
from repro.proofs.expected_time import RetryBranch, RetryRecursion
from repro.proofs.rules import compose, union_rule
from repro.proofs.statements import ArrowStatement, StateClass

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

points = st.integers(min_value=0, max_value=6)


@st.composite
def distributions(draw):
    """A finite distribution over small integers with exact weights."""
    support = draw(st.lists(points, min_size=1, max_size=5, unique=True))
    raw = draw(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=len(support),
            max_size=len(support),
        )
    )
    total = sum(raw)
    return FiniteDistribution(
        {p: Fraction(w, total) for p, w in zip(support, raw)}
    )


@st.composite
def fragments(draw):
    """A small execution fragment over integer states and letter actions."""
    length = draw(st.integers(min_value=0, max_value=6))
    states = draw(
        st.lists(points, min_size=length + 1, max_size=length + 1)
    )
    actions = draw(
        st.lists(
            st.sampled_from(["a", "b", "c"]),
            min_size=length,
            max_size=length,
        )
    )
    return ExecutionFragment(states, actions)


# ----------------------------------------------------------------------
# Distribution laws
# ----------------------------------------------------------------------


@given(distributions())
def test_total_mass_is_one(dist):
    assert sum(w for _, w in dist.items()) == 1


@given(distributions())
def test_map_preserves_mass(dist):
    image = dist.map(lambda x: x % 3)
    assert sum(w for _, w in image.items()) == 1


@given(distributions())
def test_map_composition(dist):
    f = lambda x: x + 1
    g = lambda x: x * 2
    assert dist.map(f).map(g) == dist.map(lambda x: g(f(x)))


@given(distributions(), distributions())
def test_product_marginals(left, right):
    joint = left.product(right)
    for point in left.support:
        marginal = sum(
            (w for (l, _), w in joint.items() if l == point), Fraction(0)
        )
        assert marginal == left[point]


@given(distributions())
def test_conditioning_on_support_is_identity(dist):
    assert dist.condition(dist.support) == dist


@given(distributions())
def test_expectation_of_indicator_is_probability(dist):
    for point in dist.support:
        indicator = lambda x, p=point: 1 if x == p else 0
        assert dist.expectation(indicator) == dist[point]


@given(distributions(), st.integers(min_value=0, max_value=1000))
def test_sampling_lands_in_support(dist, seed):
    rng = random.Random(seed)
    assert dist.sample(rng) in dist.support


# ----------------------------------------------------------------------
# Fragment laws
# ----------------------------------------------------------------------


@given(fragments(), fragments())
def test_concat_defined_iff_endpoints_match(left, right):
    if left.lstate == right.fstate:
        joined = left.concat(right)
        assert len(joined) == len(left) + len(right)
        assert joined.fstate == left.fstate
        assert joined.lstate == right.lstate
    else:
        import pytest

        with pytest.raises(Exception):
            left.concat(right)


@given(fragments())
def test_every_prefix_is_a_prefix(fragment):
    for k in range(len(fragment) + 1):
        prefix = fragment.prefix_of_length(k)
        assert prefix.is_prefix_of(fragment)
        assert prefix.concat(fragment.suffix_after(prefix)) == fragment


@given(fragments(), fragments())
def test_prefix_antisymmetry(a, b):
    if a.is_prefix_of(b) and b.is_prefix_of(a):
        assert a == b


# ----------------------------------------------------------------------
# Event classifier monotonicity
# ----------------------------------------------------------------------


def extensions(fragment, depth=2):
    """All extensions of ``fragment`` by ``depth`` more steps."""
    if depth == 0:
        yield fragment
        return
    for action in ("a", "b"):
        for state in range(3):
            yield from extensions(fragment.extend(action, state), depth - 1)


@given(fragments())
@settings(max_examples=40)
def test_first_occurrence_classifier_is_monotone(fragment):
    schema = FirstOccurrence("a", lambda s: s == 0)
    status = schema.classify(fragment)
    if status is EventStatus.UNDECIDED:
        return
    for extended in extensions(fragment, 2):
        assert schema.classify(extended) is status


@given(fragments())
@settings(max_examples=40)
def test_next_classifier_is_monotone(fragment):
    schema = NextFirstOccurrence(
        [("a", lambda s: s == 0), ("b", lambda s: s == 1)]
    )
    status = schema.classify(fragment)
    if status is EventStatus.UNDECIDED:
        return
    for extended in extensions(fragment, 2):
        assert schema.classify(extended) is status


@given(fragments())
@settings(max_examples=40)
def test_reach_within_steps_accept_is_stable(fragment):
    schema = ReachWithinSteps(lambda s: s == 0, 3)
    if schema.classify(fragment) is EventStatus.ACCEPT:
        for extended in extensions(fragment, 2):
            assert schema.classify(extended) is EventStatus.ACCEPT


# ----------------------------------------------------------------------
# Statement algebra
# ----------------------------------------------------------------------

names = st.sampled_from(["A", "B", "C", "D"])


@st.composite
def state_classes(draw):
    chosen = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    result = _atom(chosen[0])
    for name in chosen[1:]:
        result = result | _atom(name)
    return result


_ATOMS = {}


def _atom(name):
    if name not in _ATOMS:
        _ATOMS[name] = StateClass(name, lambda s: False)
    return _ATOMS[name]


@given(state_classes(), state_classes())
def test_union_commutes(a, b):
    assert (a | b) == (b | a)


@given(state_classes(), state_classes(), state_classes())
def test_union_associates(a, b, c):
    assert ((a | b) | c) == (a | (b | c))


@given(state_classes())
def test_union_idempotent(a):
    assert (a | a) == a


@st.composite
def arrows(draw, source=None, target=None):
    src = source if source is not None else draw(state_classes())
    tgt = target if target is not None else draw(state_classes())
    t = draw(st.integers(min_value=0, max_value=20))
    numerator = draw(st.integers(min_value=0, max_value=8))
    return ArrowStatement(src, tgt, t, Fraction(numerator, 8), "S")


@given(st.data())
def test_compose_arithmetic(data):
    mid = data.draw(state_classes())
    first = data.draw(arrows(target=mid))
    second = data.draw(arrows(source=mid))
    composed = compose(first, second)
    assert composed.time_bound == first.time_bound + second.time_bound
    assert composed.probability == first.probability * second.probability


@given(arrows(), state_classes())
def test_union_rule_preserves_bounds(statement, extra):
    lifted = union_rule(statement, extra)
    assert lifted.time_bound == statement.time_bound
    assert lifted.probability == statement.probability
    assert statement.source.is_subset_by_atoms(lifted.source)
    assert statement.target.is_subset_by_atoms(lifted.target)


# ----------------------------------------------------------------------
# Retry recursion vs simulation
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_recursion_matches_simulation(success_tenths, t_success, t_fail, seed):
    p = Fraction(success_tenths, 10)
    recursion = RetryRecursion(
        [
            RetryBranch.of(p, t_success, retries=False),
            RetryBranch.of(1 - p, t_fail, retries=True),
        ]
    )
    exact = float(recursion.solve())
    rng = random.Random(seed)
    runs = 4000
    total = 0.0
    for _ in range(runs):
        time = 0.0
        while True:
            if rng.random() < float(p):
                time += t_success
                break
            time += t_fail
        total += time
    # Standard error scales with t_fail/p; allow a generous band.
    slack = 0.4 + 4.0 * (t_fail + t_success + 1) / (float(p) * (runs ** 0.5))
    assert abs(total / runs - exact) < slack
