"""Unit tests for the exhaustive region verification (n = 3)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.exhaustive import (
    LEAF_SPECS,
    all_consistent_states,
    exhaustive_composed_check,
    exhaustive_leaf_check,
)
from repro.errors import VerificationError


class TestEnumeration:
    def test_known_count_for_ring3(self):
        states = all_consistent_states(3)
        assert len(states) == 4382

    def test_all_enumerated_states_are_consistent(self):
        for state in all_consistent_states(3)[::97]:
            assert lr.lemma_6_1_holds(state)

    def test_enumeration_cached(self):
        assert all_consistent_states(3) is all_consistent_states(3)

    def test_large_rings_rejected(self):
        with pytest.raises(VerificationError):
            all_consistent_states(5)

    def test_region_sizes(self):
        states = all_consistent_states(3)
        count = lambda region: sum(1 for s in states if region.contains(s))
        assert count(lr.P_CLASS) == 672
        assert count(lr.F_CLASS) == 920
        assert count(lr.G_CLASS) == 1044
        assert count(lr.RT_CLASS) == 2096
        assert count(lr.T_CLASS) == 3896


class TestExhaustiveLeaves:
    @pytest.mark.parametrize("name", sorted(LEAF_SPECS))
    def test_leaf_holds_over_entire_region(self, name):
        result = exhaustive_leaf_check(name, 3)
        assert result.holds, (
            f"{name}: exhaustive minimum {result.exact_minimum} below "
            f"{result.bound} at {result.witness!r}"
        )

    def test_deterministic_leaves_have_minimum_one(self):
        for name in ("A.1", "A.3", "A.15"):
            result = exhaustive_leaf_check(name, 3)
            assert result.exact_minimum == 1
            assert result.witness is None  # nothing ever dipped below 1

    def test_a11_true_minimum_is_one_half(self):
        """The exhaustive sweep sharpens Proposition A.11: over the
        whole G region the true round-synchronous minimum is 1/2 —
        double the paper's 1/4."""
        result = exhaustive_leaf_check("A.11", 3)
        assert result.exact_minimum == Fraction(1, 2)
        assert result.slack == Fraction(1, 4)
        assert result.witness is not None
        assert lr.in_good(result.witness)

    def test_a14_true_minimum_is_one(self):
        """On a ring of three every F state reaches G|P surely within
        two rounds: Proposition A.14's randomness is only needed on
        larger rings / other configurations."""
        result = exhaustive_leaf_check("A.14", 3)
        assert result.exact_minimum == 1

    def test_unknown_name_rejected(self):
        with pytest.raises(VerificationError):
            exhaustive_leaf_check("A.99", 3)


class TestExhaustiveComposed:
    def test_composed_on_a_prefix_of_t_states(self):
        result = exhaustive_composed_check(3, rounds=13, limit=150)
        assert result.states_checked == 150
        assert result.holds
        assert result.exact_minimum >= Fraction(1, 8)
