"""Model-contract guard suite: Definitions 2.1/2.2/3.3 enforcement.

The contract under test: deliberately broken models — a transition
distribution summing to 99/100, an adversary scheduling a non-enabled
step, a schema falsely claiming execution closure, a nonterminating
run — are *caught* in ``strict`` mode (quarantined with diagnostics
naming the state/action), *counted* in ``warn`` mode, and *invisible*
in ``off`` mode; and on healthy models every guard mode produces
byte-identical reports for every worker count.

The mutated models themselves live in :mod:`repro.corpus.cases` and
are registered, with their expected classifications, in the standing
defect corpus (:mod:`repro.corpus.registry`).  The mutation-matrix
tests here consume those registry entries rather than carrying private
copies — adding a defect to the corpus is what adds it here.
"""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro import contracts, obs
from repro.adversary.base import AdversarySchema, shift
from repro.adversary.deterministic import FirstEnabledAdversary
from repro.automaton.automaton import (
    ExplicitAutomaton,
    FunctionalAutomaton,
)
from repro.automaton.execution import ExecutionFragment
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.cli import main
from repro.contracts import (
    Fuel,
    GuardConfig,
    audit_automaton,
    check_chosen_step,
    check_schema_membership,
    check_transition_distribution,
    spot_check_closure,
)
from repro.corpus.cases import (
    TINY_STATEMENT,
    broken_automaton,
    honest_schema,
    liar_schema,
    rogue_adversary,
    tiny_automaton,
    zero_time,
)
from repro.corpus.registry import entry_by_name
from repro.errors import (
    AdversaryContractError,
    AutomatonError,
    DistributionError,
    ExecutionClosureError,
    FuelExhaustedError,
    VerificationError,
)
from repro.parallel import fork_available
from repro.parallel.seeds import derive_rng
from repro.probability.space import FiniteDistribution
from repro.proofs.verifier import (
    check_arrow_by_sampling,
    measure_time_to_target,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="the pooled paths need the fork method"
)

WORKER_COUNTS = [1, pytest.param(4, marks=needs_fork)]

OFF = GuardConfig(mode="off")
WARN = GuardConfig(mode="warn")
STRICT = GuardConfig(mode="strict")


@pytest.fixture(autouse=True)
def _fresh_warning_sites():
    contracts.reset_warnings()
    yield
    contracts.reset_warnings()


# ----------------------------------------------------------------------
# The tiny model and its mutations (from the shared defect corpus)
# ----------------------------------------------------------------------


def corpus_case(name):
    """The registry entry and a freshly built case for one mutation."""
    entry = entry_by_name(name)
    return entry, entry.build()


def run_case(case, guards, workers=1):
    """Replay a corpus :class:`CheckCase` through the sampling checker."""
    return run_check(
        case.automaton_factory(),
        list(case.adversaries_factory()),
        guards,
        statement=case.statement,
        schema=case.schema_factory() if case.schema_factory else None,
        workers=workers,
        samples=case.samples,
        seed=case.seed,
    )


def run_check(
    automaton,
    adversaries,
    guards,
    statement=TINY_STATEMENT,
    schema=None,
    workers=1,
    samples=8,
    seed=11,
):
    return check_arrow_by_sampling(
        automaton,
        statement,
        adversaries,
        ["a"],
        zero_time,
        samples_per_pair=samples,
        max_steps=24,
        seed=seed,
        workers=workers,
        schema=schema,
        guards=guards,
    )


# ----------------------------------------------------------------------
# Configuration and fuel parsing
# ----------------------------------------------------------------------


class TestGuardConfig:
    def test_default_is_off(self):
        config = GuardConfig()
        assert config.mode == "off"
        assert not config.checking
        assert not config.strict
        assert not config.fuelled

    def test_modes(self):
        assert WARN.checking and not WARN.strict
        assert STRICT.checking and STRICT.strict

    def test_from_flags_plain_steps(self):
        config = GuardConfig.from_flags("warn", "500")
        assert config.fuel_steps == 500
        assert config.fuel_seconds is None

    def test_from_flags_assignments(self):
        config = GuardConfig.from_flags("strict", "steps=5,seconds=1.5")
        assert config.fuel_steps == 5
        assert config.fuel_seconds == 1.5

    def test_from_flags_no_fuel(self):
        config = GuardConfig.from_flags("warn", None)
        assert not config.fuelled

    @pytest.mark.parametrize(
        "spec", ["bananas=3", "steps=", "steps=many", "seconds=soon", "=5"]
    )
    def test_bad_fuel_specs_rejected(self, spec):
        with pytest.raises(VerificationError):
            GuardConfig.from_flags("warn", spec)

    def test_fuel_requires_checking_mode(self):
        with pytest.raises(VerificationError, match="warn.*strict"):
            GuardConfig.from_flags("off", "100")

    def test_unknown_mode_rejected(self):
        with pytest.raises(VerificationError, match="unknown guard mode"):
            GuardConfig(mode="audit").validate()

    def test_nonpositive_budgets_rejected(self):
        with pytest.raises(VerificationError):
            GuardConfig(mode="warn", fuel_steps=0).validate()
        with pytest.raises(VerificationError):
            GuardConfig(mode="warn", fuel_seconds=0.0).validate()

    def test_install_and_use(self):
        assert contracts.active().mode == "off"
        with contracts.use(WARN):
            assert contracts.active().mode == "warn"
        assert contracts.active().mode == "off"


# ----------------------------------------------------------------------
# Tri-state fully-probabilistic status (satellite)
# ----------------------------------------------------------------------


class TestFullyProbabilisticTriState:
    def chain_automaton(self):
        """Unbounded functional chain 0 --go--> 1 --go--> 2 --go--> ..."""
        return FunctionalAutomaton(
            [0],
            ActionSignature(internal=frozenset({"go"})),
            lambda state: (
                Transition(state, "go", FiniteDistribution.dirac(state + 1)),
            ),
        )

    def test_linear_explicit_is_yes(self):
        # One enabled step per state and a single start: fully
        # probabilistic, and the walk covers everything.
        assert tiny_automaton().fully_probabilistic_status() == "yes"
        linear = ExplicitAutomaton(
            states=["a", "b"],
            start_states=["a"],
            signature=ActionSignature(internal=frozenset({"go"})),
            steps=[Transition("a", "go", FiniteDistribution.dirac("b"))],
        )
        assert linear.fully_probabilistic_status() == "yes"
        assert linear.is_fully_probabilistic()

    def test_branching_state_is_no(self, branching_automaton):
        assert branching_automaton.fully_probabilistic_status() == "no"
        assert not branching_automaton.is_fully_probabilistic()

    def test_multiple_starts_is_no(self):
        automaton = ExplicitAutomaton(
            states=["a", "b"],
            start_states=["a", "b"],
            signature=ActionSignature(internal=frozenset({"go"})),
            steps=[],
        )
        assert automaton.fully_probabilistic_status() == "no"

    def test_horizon_exhaustion_is_unknown_not_yes(self):
        chain = self.chain_automaton()
        assert chain.fully_probabilistic_status(horizon=5) == "unknown"
        # The historical conflation: is_fully_probabilistic used to
        # report True here.  "unknown" must not read as a definite yes.
        assert not chain.is_fully_probabilistic(horizon=5)

    def test_unknown_routed_through_audit_report(self):
        report = audit_automaton(self.chain_automaton(), horizon=5)
        assert report.fully_probabilistic == "unknown"
        assert report.exhausted
        assert "unknown" in report.summary_line()


# ----------------------------------------------------------------------
# Static audit (Definition 2.1)
# ----------------------------------------------------------------------


class TestAudit:
    def test_healthy_model_is_ok(self):
        report = audit_automaton(tiny_automaton())
        assert report.ok
        assert report.states_visited == 3
        assert report.transitions_checked == 3
        assert not report.exhausted
        assert report.to_dict()["ok"] is True
        assert "ok" in report.summary_line()

    def test_broken_distribution_is_found_with_state_and_action(self):
        report = audit_automaton(broken_automaton())
        assert not report.ok
        kinds = {finding.kind for finding in report.findings}
        assert "distribution" in kinds
        finding = next(
            f for f in report.findings if f.kind == "distribution"
        )
        assert finding.state == "'a'"
        assert finding.action == "'go'"
        assert "99/100" in finding.message
        assert "'a'" in finding.describe()

    def test_invalid_reachable_state_is_found(self):
        def validator(state):
            if state == 2:
                raise AutomatonError("state 2 is corrupt")

        automaton = FunctionalAutomaton(
            [0],
            ActionSignature(internal=frozenset({"go"})),
            lambda state: ()
            if state >= 2
            else (
                Transition(state, "go", FiniteDistribution.dirac(state + 1)),
            ),
            state_validator=validator,
        )
        report = audit_automaton(automaton)
        assert not report.ok
        assert any(
            f.kind == "state" and f.state == "2" for f in report.findings
        )

    def test_horizon_exhaustion_reported(self):
        automaton = TestFullyProbabilisticTriState().chain_automaton()
        report = audit_automaton(automaton, horizon=3)
        assert report.exhausted
        assert report.ok  # exhaustion is not a defect
        assert "horizon exhausted" in report.summary_line()

    def test_lehmann_rabin_automaton_audits_clean(self):
        from repro.algorithms import lehmann_rabin as lr

        report = audit_automaton(lr.lehmann_rabin_automaton(3), horizon=500)
        assert report.ok


# ----------------------------------------------------------------------
# Guard-check units
# ----------------------------------------------------------------------


class TestGuardChecks:
    def fragment(self):
        return ExecutionFragment.initial("a")

    def test_own_transition_passes_identity_fast_path(self):
        automaton = tiny_automaton()
        step = automaton.transitions("a")[0]
        check_chosen_step(STRICT, automaton, self.fragment(), step)

    def test_disabled_step_raises_in_strict(self):
        automaton = tiny_automaton()
        fake = Transition("a", "stop", FiniteDistribution.dirac("c"))
        with pytest.raises(AdversaryContractError) as excinfo:
            check_chosen_step(
                STRICT, automaton, self.fragment(), fake, "rogue"
            )
        assert "'stop'" in str(excinfo.value)
        assert "'a'" in str(excinfo.value)
        assert excinfo.value.to_dict()["kind"] == "adversary"

    def test_wrong_source_raises_in_strict(self):
        automaton = tiny_automaton()
        stray = Transition("b", "go", FiniteDistribution.dirac("c"))
        with pytest.raises(AdversaryContractError, match="ends in 'a'"):
            check_chosen_step(STRICT, automaton, self.fragment(), stray)

    def test_broken_distribution_raises_in_strict(self):
        automaton = broken_automaton()
        step = automaton.transitions("a")[0]
        with pytest.raises(DistributionError, match="99/100"):
            check_transition_distribution(STRICT, step)

    def test_validated_distribution_is_cached(self):
        step = tiny_automaton().transitions("a")[0]
        assert check_transition_distribution(STRICT, step) is None
        assert id(step) in contracts.guards._validated_transitions
        assert check_transition_distribution(STRICT, step) is None

    def test_failures_are_not_cached(self):
        step = broken_automaton().transitions("a")[0]
        first = check_transition_distribution(WARN, step)
        assert isinstance(first, DistributionError)
        # A later strict pass over the same object must still raise.
        with pytest.raises(DistributionError):
            check_transition_distribution(STRICT, step)

    def test_schema_membership_violation(self):
        outsider = AdversarySchema(
            name="empty", contains=lambda adv: False
        )
        with pytest.raises(AdversaryContractError, match="'empty'"):
            check_schema_membership(
                STRICT, outsider, FirstEnabledAdversary(), "first"
            )
        check_schema_membership(
            STRICT, honest_schema(), FirstEnabledAdversary(), "first"
        )

    def test_closure_spot_check_catches_false_claim(self):
        fragment = self.fragment().extend("go", "b").extend("go", "c")
        rng = derive_rng(0, "contracts")
        with pytest.raises(ExecutionClosureError, match="tiny-liar"):
            spot_check_closure(
                STRICT,
                liar_schema(),
                FirstEnabledAdversary(),
                fragment,
                rng,
            )
        spot_check_closure(
            STRICT, honest_schema(), FirstEnabledAdversary(), fragment, rng
        )

    def test_shift_witness_satisfies_definition(self):
        """The shift wrapper is the Definition 3.3 witness ``A'``."""
        automaton = tiny_automaton()
        base = FirstEnabledAdversary()
        prefix = self.fragment().extend("go", "b")
        shifted = shift(base, prefix)
        tail = ExecutionFragment.initial("b")
        assert shifted.choose(automaton, tail) == base.choose(
            automaton, prefix.concat(tail)
        )

    def test_warn_counts_and_warns_once_per_site(self, capsys):
        automaton = broken_automaton()
        step = automaton.transitions("a")[0]
        with obs.recording() as registry:
            for _ in range(5):
                check_transition_distribution(WARN, step)
        counters = registry.metrics.snapshot()["counters"]
        assert counters["contracts.violations"] == 5
        assert counters["contracts.distribution"] == 5
        err = capsys.readouterr().err
        assert err.count("repro: contract warning") == 1
        contracts.reset_warnings()
        check_transition_distribution(WARN, step)
        assert "contract warning" in capsys.readouterr().err

    def test_fuel_step_budget(self):
        fuel = Fuel(1, None)
        assert fuel.spend(STRICT, self.fragment())
        with pytest.raises(FuelExhaustedError, match="step budget"):
            fuel.spend(STRICT, self.fragment())

    def test_fuel_warn_mode_returns_false(self):
        fuel = Fuel(2, None)
        with obs.recording() as registry:
            assert fuel.spend(WARN, self.fragment())
            assert fuel.spend(WARN, self.fragment())
            assert not fuel.spend(WARN, self.fragment())
        counters = registry.metrics.snapshot()["counters"]
        assert counters["contracts.fuel"] == 1

    def test_violation_carries_minimal_repro(self):
        fragment = self.fragment().extend("go", "b")
        error = FuelExhaustedError(
            "out of fuel", state="b", prefix=fragment, site="fuel:x"
        )
        assert "state='b'" in str(error)
        assert "prefix=" in str(error)


# ----------------------------------------------------------------------
# Mutation matrix: strict catches, warn counts, off is invisible —
# at workers 1 and 4.  Every mutation comes from the defect corpus.
# ----------------------------------------------------------------------


class TestMutationMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_broken_distribution_strict_quarantines(self, workers):
        entry, case = corpus_case("distribution-sum-99-100")
        assert entry.expect["strict"] == "quarantined:distribution"
        report = run_case(case, STRICT, workers=workers)
        assert not report.checks
        assert len(report.quarantined) == 1
        pair = report.quarantined[0]
        assert pair.kind == entry.expected_kind
        assert "'a'" in pair.message and "'go'" in pair.message
        assert "99/100" in pair.message
        assert not report.supported
        assert math.isnan(report.min_estimate)
        assert "quarantined" in report.summary_line()
        assert report.to_dict()["min_estimate"] is None

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_broken_distribution_warn_counts(self, workers):
        entry, case = corpus_case("distribution-sum-99-100")
        with obs.recording() as registry:
            report = run_case(case, WARN, workers=workers)
        assert not report.quarantined
        assert report.checks[0].summary.trials == case.samples
        counters = registry.metrics.snapshot()["counters"]
        assert counters["contracts.violations"] >= 1
        assert counters[f"contracts.{entry.expected_kind}"] >= 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_broken_distribution_off_is_invisible(self, workers):
        entry, case = corpus_case("distribution-sum-99-100")
        assert entry.expect["off"] == "ok"
        with obs.recording() as registry:
            off_report = run_case(case, OFF, workers=workers)
        counters = registry.metrics.snapshot()["counters"]
        assert not any(name.startswith("contracts.") for name in counters)
        # Warn mode changes nothing but the counters: same bytes.
        warn_report = run_case(case, WARN, workers=workers)
        assert warn_report.to_dict() == off_report.to_dict()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_rogue_adversary_strict_quarantines(self, workers):
        entry, case = corpus_case("adversary-disabled-step")
        report = run_case(case, STRICT, workers=workers)
        assert len(report.quarantined) == 1
        pair = report.quarantined[0]
        assert pair.kind == entry.expected_kind == "adversary"
        assert pair.adversary_name == "rogue"
        assert "not enabled" in pair.message
        assert "'stop'" in pair.message

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_rogue_adversary_warn_counts(self, workers):
        entry, case = corpus_case("adversary-disabled-step")
        with obs.recording() as registry:
            report = run_case(case, WARN, workers=workers)
        assert not report.quarantined
        counters = registry.metrics.snapshot()["counters"]
        assert counters[f"contracts.{entry.expected_kind}"] >= 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_rogue_adversary_off_is_invisible(self, workers):
        _, case = corpus_case("adversary-disabled-step")
        with obs.recording() as registry:
            report = run_case(case, OFF, workers=workers)
        assert not report.quarantined
        counters = registry.metrics.snapshot()["counters"]
        assert not any(name.startswith("contracts.") for name in counters)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_false_closure_strict_quarantines(self, workers):
        entry, case = corpus_case("schema-false-closure")
        report = run_case(case, STRICT, workers=workers)
        assert len(report.quarantined) == 1
        pair = report.quarantined[0]
        assert pair.kind == entry.expected_kind == "closure"
        assert "tiny-liar" in pair.message
        assert "execution_closed" in pair.message

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_false_closure_warn_counts(self, workers):
        entry, case = corpus_case("schema-false-closure")
        with obs.recording() as registry:
            report = run_case(case, WARN, workers=workers)
        assert not report.quarantined
        counters = registry.metrics.snapshot()["counters"]
        assert counters[f"contracts.{entry.expected_kind}"] >= 1

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_false_closure_off_is_invisible(self, workers):
        _, case = corpus_case("schema-false-closure")
        with obs.recording() as registry:
            run_case(case, OFF, workers=workers)
        counters = registry.metrics.snapshot()["counters"]
        assert not any(name.startswith("contracts.") for name in counters)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_healthy_model_identical_across_modes(self, workers):
        entry, case = corpus_case("healthy-tiny")
        assert all(entry.expect[mode] == "ok" for mode in entry.expect)
        reports = [
            run_check(
                case.automaton_factory(),
                list(case.adversaries_factory()),
                guards,
                schema=honest_schema(),
                workers=workers,
            ).to_dict()
            for guards in (OFF, WARN, STRICT)
        ]
        assert reports[0] == reports[1] == reports[2]
        assert not reports[0]["quarantined"]


# ----------------------------------------------------------------------
# Fuel budgets and quarantine degradation
# ----------------------------------------------------------------------


class TestFuelAndQuarantine:
    def test_strict_fuel_surfaces_nontermination(self):
        entry, case = corpus_case("fuel-exhausted-never-target")
        report = run_case(
            case, GuardConfig(mode="strict", fuel_steps=case.fuel_steps)
        )
        assert len(report.quarantined) == 1
        pair = report.quarantined[0]
        assert pair.kind == entry.expected_kind == "fuel"
        assert f"step budget of {case.fuel_steps}" in pair.message
        assert "prefix=" in pair.message

    def test_warn_fuel_truncates_like_max_steps(self):
        entry, case = corpus_case("fuel-exhausted-never-target")
        assert not entry.warn_matches_off  # fuel truncates trajectories
        with obs.recording() as registry:
            report = run_case(
                case, GuardConfig(mode="warn", fuel_steps=case.fuel_steps)
            )
        assert not report.quarantined
        check = report.checks[0]
        assert check.summary.trials == case.samples
        assert check.summary.successes == 0
        counters = registry.metrics.snapshot()["counters"]
        assert counters["contracts.fuel"] == case.samples

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_poisoned_pair_degrades_not_aborts(self, workers):
        """One rogue adversary in a family must not poison the rest."""
        family = [
            ("first", FirstEnabledAdversary()),
            ("rogue", rogue_adversary()),
        ]
        report = run_check(
            tiny_automaton(), family, STRICT, workers=workers
        )
        assert len(report.checks) == 1
        assert len(report.quarantined) == 1
        assert report.quarantined[0].adversary_name == "rogue"
        # The healthy pair's stream is derived from its own identity,
        # so its counts match a solo run exactly.
        solo = run_check(
            tiny_automaton(), [("first", FirstEnabledAdversary())], STRICT
        )
        assert report.checks[0].summary == solo.checks[0].summary

    def test_time_to_target_quarantine(self):
        report = measure_time_to_target(
            tiny_automaton(),
            "rogue",
            rogue_adversary(),
            ["a"],
            lambda s: s == "c",
            zero_time,
            samples=4,
            max_steps=24,
            seed=5,
            guards=STRICT,
        )
        assert not report.times
        assert len(report.quarantined) == 1
        assert report.quarantined[0].kind == "adversary"
        assert report.to_dict()["quarantined"]

    def test_time_to_target_healthy_modes_identical(self):
        reports = [
            measure_time_to_target(
                tiny_automaton(),
                "first",
                FirstEnabledAdversary(),
                ["a"],
                lambda s: s == "c",
                zero_time,
                samples=6,
                max_steps=24,
                seed=5,
                schema=honest_schema(),
                guards=guards,
            ).to_dict()
            for guards in (OFF, WARN, STRICT)
        ]
        assert reports[0] == reports[1] == reports[2]


# ----------------------------------------------------------------------
# Lint satellite: no bare assert under src/
# ----------------------------------------------------------------------


class TestLintAssertBan:
    @pytest.fixture(scope="class")
    def lint(self):
        root = Path(__file__).resolve().parent.parent
        spec = importlib.util.spec_from_file_location(
            "repro_lint", root / "tools" / "lint.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_assert_flagged_under_src(self, lint, tmp_path):
        src = tmp_path / "src" / "mod.py"
        src.parent.mkdir()
        src.write_text("def f(x):\n    assert x\n    return x\n")
        findings = lint.banned_handlers(src)
        assert any("assert" in message for _, message in findings)
        assert lint.run_ban_check([tmp_path]) == 1

    def test_tests_are_exempt(self, lint, tmp_path):
        exempt = tmp_path / "tests" / "test_mod.py"
        exempt.parent.mkdir()
        exempt.write_text("def test_f():\n    assert True\n")
        assert lint.run_ban_check([tmp_path / "tests"]) == 0

    def test_repo_src_is_clean(self, lint):
        root = Path(__file__).resolve().parent.parent
        assert lint.run_ban_check([root / "src"]) == 0


# ----------------------------------------------------------------------
# CLI acceptance: byte identity, exit codes, audit
# ----------------------------------------------------------------------


class TestCLI:
    CHECK = ["check", "--prop", "A.14", "--n", "3", "--samples", "6",
             "--json"]

    def run_cli(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_guard_modes_byte_identical_on_healthy_model(self, capsys):
        code, baseline, _ = self.run_cli(
            self.CHECK + ["--guards", "off"], capsys
        )
        assert code == 0
        worker_counts = ["1"]
        if fork_available():
            worker_counts.append("4")
        for workers in worker_counts:
            for mode in ("warn", "strict"):
                code, out, _ = self.run_cli(
                    self.CHECK
                    + ["--guards", mode, "--workers", workers],
                    capsys,
                )
                assert code == 0, (mode, workers)
                assert out == baseline, (mode, workers)

    def test_strict_fuel_exits_with_contract_status(self, capsys):
        code, out, _ = self.run_cli(
            self.CHECK + ["--guards", "strict", "--fuel", "steps=1"],
            capsys,
        )
        assert code == 4
        data = json.loads(out)
        assert data["quarantined"]
        assert all(q["kind"] == "fuel" for q in data["quarantined"])

    def test_fuel_requires_guard_mode(self, capsys):
        with pytest.raises(VerificationError, match="warn.*strict"):
            main(self.CHECK + ["--guards", "off", "--fuel", "100"])

    def test_audit_healthy_ring(self, capsys):
        code, out, _ = self.run_cli(["audit", "--n", "3", "--json"], capsys)
        assert code == 0
        data = json.loads(out)
        assert data["ok"] is True
        assert data["fully_probabilistic"] in ("yes", "no", "unknown")
        code, out, _ = self.run_cli(["audit", "--n", "3"], capsys)
        assert code == 0
        assert "audit: ok" in out

    def test_help_documents_contract_exit_status(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        assert "exit status" in text
        assert "model-contract violation" in text

    def test_check_help_documents_guard_flags(self):
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            with pytest.raises(SystemExit):
                main(["check", "--help"])
        text = buffer.getvalue()
        assert "--guards" in text
        assert "--fuel" in text
