"""Determinism suite for the parallel Monte-Carlo backend.

The contract under test: a sampling report is a pure function of the
root seed and the work's identity — the same for ``workers=1`` and
``workers=N``, unchanged when unrelated pairs are added, with early
stopping never flipping a verdict and worker-side metrics merging to
exactly the sequential totals.
"""

from __future__ import annotations

import json
import random
from fractions import Fraction

import pytest

from repro import obs
from repro.adversary.deterministic import FirstEnabledAdversary
from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_lr_statement
from repro.errors import VerificationError
from repro.parallel import (
    derive_seed,
    fork_available,
    merge_metrics_snapshot,
    metrics_snapshot,
    occurrence_indices,
    resolve_workers,
)
from repro.probability.stats import BernoulliSummary
from repro.proofs.statements import ArrowStatement, StateClass
from repro.proofs.verifier import (
    ArrowCheckReport,
    PairCheck,
    check_arrow_by_sampling,
    measure_time_to_target,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="parallel backend needs the fork method"
)


def zero_time(state):
    return Fraction(0)


START = StateClass("Start", lambda s: s == "start")
GOAL = StateClass("Goal", lambda s: s == "goal")
NEVER = StateClass("Never", lambda s: False)


@pytest.fixture(scope="module")
def setup3() -> LRExperimentSetup:
    return LRExperimentSetup.build(3, random_seeds=(1,))


class TestSeedDerivation:
    def test_same_identity_same_seed(self):
        assert derive_seed(7, "adv", "state", 0) == derive_seed(
            7, "adv", "state", 0
        )

    def test_any_part_changes_the_seed(self):
        base = derive_seed(7, "adv", "state", 0)
        assert derive_seed(8, "adv", "state", 0) != base
        assert derive_seed(7, "bdv", "state", 0) != base
        assert derive_seed(7, "adv", "state2", 0) != base
        assert derive_seed(7, "adv", "state", 1) != base

    def test_part_boundaries_are_unambiguous(self):
        assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")

    def test_occurrence_indices_count_duplicates(self):
        assert occurrence_indices(["a", "b", "a", "a", "b"]) == [
            0, 0, 1, 2, 1,
        ]

    def test_resolve_workers_validates(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        with pytest.raises(VerificationError):
            resolve_workers(0)


class TestWorkerCountInvariance:
    """Same root seed => byte-identical reports for 1 and 4 workers."""

    def check(self, coin_walk, workers, **kwargs):
        statement = ArrowStatement(START, GOAL, 0, Fraction(1, 2), "all")
        return check_arrow_by_sampling(
            coin_walk,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            seed=11,
            samples_per_pair=60,
            max_steps=300,
            workers=workers,
            **kwargs,
        )

    def test_small_automaton_byte_identical(self, coin_walk):
        sequential = self.check(coin_walk, workers=1)
        parallel = self.check(coin_walk, workers=4)
        assert json.dumps(sequential.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_lehmann_rabin_byte_identical(self, setup3):
        statement = lr.leaf_statements()["A.14"]
        reports = [
            check_lr_statement(
                statement, setup3, seed=5, samples_per_pair=12,
                random_starts=2, max_steps=200, workers=workers,
            )
            for workers in (1, 4)
        ]
        dumps = [
            json.dumps(report.to_dict(), sort_keys=True)
            for report in reports
        ]
        assert dumps[0] == dumps[1]

    def test_rng_root_is_deterministic_too(self, coin_walk):
        statement = ArrowStatement(START, GOAL, 0, Fraction(1, 2), "all")

        def run(workers):
            return check_arrow_by_sampling(
                coin_walk, statement,
                [("first", FirstEnabledAdversary())], ["start"], zero_time,
                random.Random(3), samples_per_pair=40, max_steps=300,
                workers=workers,
            )

        assert run(1).to_dict() == run(4).to_dict()

    def test_added_pairs_leave_existing_streams_alone(self, setup3):
        statement = lr.leaf_statements()["A.14"]

        def pair_dicts(random_starts):
            report = check_lr_statement(
                statement, setup3, seed=5, samples_per_pair=10,
                random_starts=random_starts, max_steps=200,
            )
            return {
                (c["adversary"], c["start_state"]): c
                for c in report.to_dict()["checks"]
            }

        small = pair_dicts(0)
        large = pair_dicts(3)
        assert set(small) <= set(large)
        for key, check in small.items():
            assert large[key] == check


class TestEarlyStop:
    def run(self, automaton, statement, early_stop, cap=200):
        return check_arrow_by_sampling(
            automaton,
            statement,
            [("first", FirstEnabledAdversary())],
            ["start"],
            zero_time,
            seed=17,
            samples_per_pair=cap,
            max_steps=300,
            early_stop=early_stop,
        )

    def test_supported_pair_stops_early_same_verdict(self, coin_walk):
        statement = ArrowStatement(START, GOAL, 0, Fraction(1, 2), "all")
        early = self.run(coin_walk, statement, early_stop=True)
        full = self.run(coin_walk, statement, early_stop=False)
        assert (early.refuted, early.supported) == (
            full.refuted, full.supported,
        )
        assert early.worst.summary.trials < full.worst.summary.trials
        assert full.worst.summary.trials == 200

    def test_refuted_pair_stops_early_same_verdict(self, coin_walk):
        statement = ArrowStatement(START, NEVER, 0, Fraction(1, 2), "all")
        early = self.run(coin_walk, statement, early_stop=True, cap=100)
        full = self.run(coin_walk, statement, early_stop=False, cap=100)
        assert early.refuted and full.refuted
        assert early.worst.summary.trials < 100

    def test_early_stop_identical_across_worker_counts(self, coin_walk):
        statement = ArrowStatement(START, GOAL, 0, Fraction(1, 2), "all")

        def run(workers):
            return check_arrow_by_sampling(
                coin_walk, statement,
                [("first", FirstEnabledAdversary())], ["start"], zero_time,
                seed=23, samples_per_pair=500, max_steps=300,
                early_stop=True, workers=workers,
            )

        assert run(1).to_dict() == run(4).to_dict()


class TestObsMerge:
    def run_recorded(self, setup3, workers):
        statement = lr.leaf_statements()["A.14"]
        with obs.recording() as registry:
            check_lr_statement(
                statement, setup3, seed=5, samples_per_pair=10,
                random_starts=1, max_steps=200, workers=workers,
            )
        return registry.metrics.snapshot()

    def test_worker_metrics_merge_to_sequential_totals(self, setup3):
        sequential = self.run_recorded(setup3, workers=1)
        parallel = self.run_recorded(setup3, workers=2)
        assert parallel == sequential
        assert parallel["counters"]["verifier.pairs"] > 0
        assert parallel["counters"]["sampler.samples"] > 0

    def test_snapshot_round_trip(self):
        from repro.obs.metrics import Metrics

        source = Metrics()
        source.counter("a.count").inc(3)
        source.gauge("a.gauge").set(7)
        source.histogram("a.hist").observe(1.0)
        source.histogram("a.hist").observe(2.0)
        merged = Metrics()
        merge_metrics_snapshot(merged, metrics_snapshot(source))
        assert merged.snapshot() == source.snapshot()


class TestTimeToTarget:
    def measure(self, coin_walk, workers, samples=5):
        return measure_time_to_target(
            coin_walk,
            "first",
            FirstEnabledAdversary(),
            ["start", "middle"],
            lambda s: s == "goal",
            zero_time,
            seed=9,
            samples=samples,
            max_steps=2_000,
            workers=workers,
        )

    def test_samples_distributed_evenly(self, coin_walk):
        report = self.measure(coin_walk, workers=1, samples=5)
        # 5 samples over 2 starts rounds up to 3 each: no start is
        # silently over-weighted in the mean.
        assert [c.samples for c in report.per_start] == [3, 3]
        data = report.to_dict()
        assert data["samples"] == 6
        assert [c["samples"] for c in data["per_start"]] == [3, 3]
        assert sum(c["reached"] for c in data["per_start"]) == len(
            report.times
        )

    def test_identical_across_worker_counts(self, coin_walk):
        sequential = self.measure(coin_walk, workers=1, samples=8)
        parallel = self.measure(coin_walk, workers=3, samples=8)
        assert sequential.times == parallel.times
        assert sequential.to_dict() == parallel.to_dict()


class TestWorstTieBreak:
    def report(self, order):
        statement = ArrowStatement(START, GOAL, 0, Fraction(1, 2), "all")
        checks = tuple(
            PairCheck(
                adversary_name=name,
                start_state="start",
                summary=BernoulliSummary(1, 2),
                truncated=0,
            )
            for name in order
        )
        return ArrowCheckReport(
            statement=statement, checks=checks, confidence=0.99
        )

    def test_ties_break_on_name_not_list_order(self):
        forward = self.report(["alpha", "beta"])
        backward = self.report(["beta", "alpha"])
        assert forward.worst.adversary_name == "alpha"
        assert backward.worst.adversary_name == "alpha"
        assert forward.summary_line() == backward.summary_line()
