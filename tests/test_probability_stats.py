"""Unit tests for the confidence-bound machinery."""

from __future__ import annotations

import math

import pytest
from scipy import stats as scipy_stats

from repro.errors import VerificationError
from repro.probability.stats import (
    BernoulliSummary,
    MeanSummary,
    _binomial_cdf,
    _normal_quantile,
    clopper_pearson_lower,
    clopper_pearson_upper,
    hoeffding_lower_bound,
    hoeffding_upper_bound,
    refutes_lower_bound,
    supports_lower_bound,
    wilson_interval,
)


class TestBernoulliSummary:
    def test_estimate(self):
        assert BernoulliSummary(30, 100).estimate == 0.3

    def test_rejects_zero_trials(self):
        with pytest.raises(VerificationError):
            BernoulliSummary(0, 0)

    def test_rejects_successes_above_trials(self):
        with pytest.raises(VerificationError):
            BernoulliSummary(11, 10)

    def test_rejects_negative_successes(self):
        with pytest.raises(VerificationError):
            BernoulliSummary(-1, 10)

    def test_from_outcomes(self):
        summary = BernoulliSummary.from_outcomes([True, False, True, True])
        assert summary.successes == 3
        assert summary.trials == 4


class TestHoeffding:
    def test_lower_below_estimate(self):
        summary = BernoulliSummary(70, 100)
        assert hoeffding_lower_bound(summary) < summary.estimate

    def test_upper_above_estimate(self):
        summary = BernoulliSummary(70, 100)
        assert hoeffding_upper_bound(summary) > summary.estimate

    def test_lower_clamped_at_zero(self):
        assert hoeffding_lower_bound(BernoulliSummary(1, 100)) == 0.0

    def test_upper_clamped_at_one(self):
        assert hoeffding_upper_bound(BernoulliSummary(99, 100)) == 1.0

    def test_slack_shrinks_with_samples(self):
        small = BernoulliSummary(50, 100)
        large = BernoulliSummary(5000, 10000)
        assert (small.estimate - hoeffding_lower_bound(small)) > (
            large.estimate - hoeffding_lower_bound(large)
        )

    def test_invalid_confidence_rejected(self):
        with pytest.raises(VerificationError):
            hoeffding_lower_bound(BernoulliSummary(1, 2), confidence=1.0)


class TestWilson:
    def test_interval_brackets_estimate(self):
        summary = BernoulliSummary(40, 100)
        low, high = wilson_interval(summary)
        assert low < summary.estimate < high

    def test_interval_within_unit(self):
        low, high = wilson_interval(BernoulliSummary(0, 10))
        assert 0.0 <= low <= high <= 1.0

    def test_tighter_than_hoeffding_midrange(self):
        summary = BernoulliSummary(500, 1000)
        low, _ = wilson_interval(summary, confidence=0.99)
        assert low >= hoeffding_lower_bound(summary, confidence=0.99)


class TestClopperPearson:
    def test_zero_successes_lower_is_zero(self):
        assert clopper_pearson_lower(BernoulliSummary(0, 50)) == 0.0

    def test_all_successes_upper_is_one(self):
        assert clopper_pearson_upper(BernoulliSummary(50, 50)) == 1.0

    def test_lower_matches_scipy_beta(self):
        # Clopper-Pearson lower bound = Beta(k, n-k+1) quantile at alpha.
        k, n, confidence = 30, 100, 0.99
        expected = scipy_stats.beta.ppf(1 - confidence, k, n - k + 1)
        actual = clopper_pearson_lower(BernoulliSummary(k, n), confidence)
        assert math.isclose(actual, expected, abs_tol=1e-6)

    def test_upper_matches_scipy_beta(self):
        k, n, confidence = 30, 100, 0.99
        expected = scipy_stats.beta.ppf(confidence, k + 1, n - k)
        actual = clopper_pearson_upper(BernoulliSummary(k, n), confidence)
        assert math.isclose(actual, expected, abs_tol=1e-6)

    def test_bounds_bracket_estimate(self):
        summary = BernoulliSummary(25, 80)
        assert (
            clopper_pearson_lower(summary)
            < summary.estimate
            < clopper_pearson_upper(summary)
        )


class TestDecisions:
    def test_refutes_clearly_false_claim(self):
        # 5/1000 successes refutes "probability >= 1/2".
        assert refutes_lower_bound(BernoulliSummary(5, 1000), 0.5)

    def test_does_not_refute_consistent_claim(self):
        assert not refutes_lower_bound(BernoulliSummary(130, 1000), 0.125)

    def test_supports_clearly_true_claim(self):
        assert supports_lower_bound(BernoulliSummary(900, 1000), 0.5)

    def test_support_is_stronger_than_not_refuted(self):
        summary = BernoulliSummary(55, 100)
        assert not refutes_lower_bound(summary, 0.5)
        assert not supports_lower_bound(summary, 0.5)


class TestMeanSummary:
    def test_from_values(self):
        summary = MeanSummary.from_values([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.count == 3

    def test_sample_variance(self):
        summary = MeanSummary.from_values([1.0, 3.0])
        assert summary.variance == 2.0

    def test_single_value_variance_zero(self):
        assert MeanSummary.from_values([5.0]).variance == 0.0

    def test_empty_rejected(self):
        with pytest.raises(VerificationError):
            MeanSummary.from_values([])

    def test_hoeffding_mean_upper_above_mean(self):
        summary = MeanSummary.from_values([10.0] * 50)
        assert summary.hoeffding_mean_upper(value_range=63.0) > 10.0

    def test_hoeffding_mean_upper_rejects_bad_range(self):
        summary = MeanSummary.from_values([1.0, 2.0])
        with pytest.raises(VerificationError):
            summary.hoeffding_mean_upper(value_range=0.0)


class TestNumericHelpers:
    def test_normal_quantile_median(self):
        assert abs(_normal_quantile(0.5)) < 1e-9

    def test_normal_quantile_975(self):
        assert math.isclose(_normal_quantile(0.975), 1.959964, abs_tol=1e-4)

    def test_normal_quantile_tails(self):
        assert math.isclose(
            _normal_quantile(0.001), scipy_stats.norm.ppf(0.001), abs_tol=1e-4
        )

    def test_normal_quantile_rejects_boundary(self):
        with pytest.raises(VerificationError):
            _normal_quantile(0.0)

    @pytest.mark.parametrize("k,n,p", [(3, 10, 0.3), (0, 5, 0.9), (7, 8, 0.5)])
    def test_binomial_cdf_matches_scipy(self, k, n, p):
        assert math.isclose(
            _binomial_cdf(k, n, p),
            scipy_stats.binom.cdf(k, n, p),
            abs_tol=1e-9,
        )

    def test_binomial_cdf_degenerate_cases(self):
        assert _binomial_cdf(-1, 10, 0.5) == 0.0
        assert _binomial_cdf(10, 10, 0.5) == 1.0
        assert _binomial_cdf(3, 10, 0.0) == 1.0
        assert _binomial_cdf(3, 10, 1.0) == 0.0
