"""Herman's self-stabilizing ring: model registration and golden counts.

The first case study shipped entirely through the pluggable model
front-end.  Beyond the protocol-level tests these pin the *compiled*
footprint: the untimed state counts of the n=3 and n=5 rings, plain
and under the dihedral quotient, are golden numbers — a change means
the automaton, the quotient, or the compiler changed semantics.
"""

from __future__ import annotations

import pytest

from repro.corpus.runner import report_digest
from repro.errors import VerificationError
from repro.models import get_model
from repro.statespace.compile import compile_space


@pytest.fixture(scope="module")
def herman():
    return get_model("herman")


class TestRegistration:
    def test_registered_with_expected_surface(self, herman):
        assert herman.name == "herman"
        assert herman.n_default == 3
        assert herman.default_prop == "H.1"
        assert "H.1" in herman.leaf_statements(3)
        assert herman.symmetry_spec is not None

    def test_odd_ring_sizes_only(self, herman):
        herman.validate_n(3)
        herman.validate_n(5)
        with pytest.raises(VerificationError):
            herman.validate_n(4)
        with pytest.raises(VerificationError):
            herman.validate_n(1)

    def test_setup_carries_three_round_adversaries(self, herman):
        setup = herman.build(3)
        assert [name for name, _ in setup.adversaries] == [
            "fifo", "reversed", "rotating",
        ]
        assert setup.n == 3 and setup.schema is not None


class TestGoldenCounts:
    """Compiled-space sizes are part of the model's contract."""

    @pytest.mark.parametrize(
        "n, plain_states, plain_steps, sym_states, sym_steps",
        [
            (3, 98, 248, 30, 78),
            (5, 2882, 9132, 524, 1602),
        ],
    )
    def test_untimed_and_symmetry_counts(
        self, herman, n, plain_states, plain_steps, sym_states, sym_steps
    ):
        setup = herman.build(n)
        roots = list(herman.canonical_states(n).values())
        plain = compile_space(setup.automaton, roots, herman.space_spec(n))
        assert (plain.n_states, plain.n_transitions) == (
            plain_states, plain_steps,
        )
        sym = compile_space(setup.automaton, roots, herman.symmetry_spec(n))
        assert (sym.n_states, sym.n_transitions) == (sym_states, sym_steps)

    def test_symmetry_quotient_shrinks_the_space(self, herman):
        setup = herman.build(3)
        roots = list(herman.canonical_states(3).values())
        plain = compile_space(setup.automaton, roots, herman.space_spec(3))
        sym = compile_space(setup.automaton, roots, herman.symmetry_spec(3))
        assert sym.n_states < plain.n_states


class TestEndToEnd:
    def test_progress_statement_supported_identically_per_engine(
        self, herman
    ):
        from repro.analysis.montecarlo import check_statement

        setup = herman.build(3)
        statement = herman.leaf_statements(3)["H.1"]
        digests = set()
        for engine in ("tree", "compiled", "batched", "batched-pure"):
            report = check_statement(
                statement, setup, seed=0, samples_per_pair=8,
                max_steps=60, engine=engine,
            )
            assert not report.refuted
            digests.add(report_digest(report.to_dict()))
        assert len(digests) == 1
