"""Unit tests for the hostile Lehmann-Rabin adversaries."""

from __future__ import annotations

import random

import pytest

from repro.adversary.unit_time import RoundBasedAdversary, unit_time_schema
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin.adversaries import (
    ObstructionistPolicy,
    SlowStarterPolicy,
)
from repro.algorithms.lehmann_rabin.state import PC, ProcessState, Side
from repro.automaton.execution import ExecutionFragment


def ring(*locals_):
    return lr.make_state(list(locals_))


R = lambda: ProcessState(PC.R, Side.LEFT)


@pytest.fixture
def setup3():
    return lr.lehmann_rabin_automaton(3), lr.LRProcessView(3)


class TestObstructionist:
    def test_steals_contested_resource_first(self, setup3):
        automaton, view = setup3
        # Process 0 at S<- holds Res_2 and wants Res_0 next; process 1
        # waits left for Res_0.  Stealing Res_0 via process 1 first
        # makes 0's check fail.
        state = ring(
            ProcessState(PC.S, Side.LEFT),
            ProcessState(PC.W, Side.LEFT),
            R(),
        )
        adversary = RoundBasedAdversary(view, ObstructionistPolicy())
        step = adversary.choose(automaton, ExecutionFragment.initial(state))
        assert view.process_of(step.action) == 1  # the thief goes first

    def test_hurries_a_doomed_check(self, setup3):
        automaton, view = setup3
        # Process 0 at S-> whose second resource (Res_2) is held by
        # process 2 (S->): firing the check now wastes it.  Process 1
        # at F is neutral, so 0 goes first.
        state = ring(
            ProcessState(PC.S, Side.RIGHT),
            ProcessState(PC.F, Side.LEFT),
            ProcessState(PC.S, Side.RIGHT),
        )
        adversary = RoundBasedAdversary(view, ObstructionistPolicy())
        step = adversary.choose(automaton, ExecutionFragment.initial(state))
        assert view.process_of(step.action) == 0

    def test_delays_a_promising_check(self, setup3):
        automaton, view = setup3
        # Process 0 at S<- with its second resource free scores last;
        # the neutral process 1 (at F) goes first.
        state = ring(
            ProcessState(PC.S, Side.LEFT),
            ProcessState(PC.F, Side.LEFT),
            R(),
        )
        adversary = RoundBasedAdversary(view, ObstructionistPolicy())
        step = adversary.choose(automaton, ExecutionFragment.initial(state))
        assert view.process_of(step.action) == 1

    def test_is_a_unit_time_member(self, setup3):
        _, view = setup3
        schema = unit_time_schema(view)
        assert schema.contains(
            RoundBasedAdversary(view, ObstructionistPolicy())
        )


class TestSlowStarter:
    def test_victim_scheduled_last(self, setup3):
        automaton, view = setup3
        state = lr.canonical_states(3)["all_flip"]
        adversary = RoundBasedAdversary(view, SlowStarterPolicy(0))
        fragment = ExecutionFragment.initial(state)
        scheduled = []
        rng = random.Random(0)
        for _ in range(3):
            step = adversary.checked_choose(automaton, fragment)
            scheduled.append(view.process_of(step.action))
            fragment = fragment.extend(step.action, step.target.sample(rng))
        assert scheduled == [1, 2, 0]

    def test_victim_still_progresses_within_round(self, setup3):
        automaton, view = setup3
        state = lr.canonical_states(3)["all_flip"]
        adversary = RoundBasedAdversary(view, SlowStarterPolicy(0))
        fragment = ExecutionFragment.initial(state)
        rng = random.Random(0)
        from repro.automaton.signature import TIME_PASSAGE

        while True:
            step = adversary.checked_choose(automaton, fragment)
            fragment = fragment.extend(step.action, step.target.sample(rng))
            if step.action == TIME_PASSAGE:
                break
        # By the end of round 1 every process, victim included, stepped.
        stepped = {
            view.process_of(a) for a in fragment.actions if a != TIME_PASSAGE
        }
        assert stepped == {0, 1, 2}


class TestFamily:
    def test_family_members_are_unit_time(self):
        view = lr.LRProcessView(4)
        schema = unit_time_schema(view)
        family = lr.lr_adversary_family(view)
        assert len(family) >= 8
        for name, adversary in family:
            assert schema.contains(adversary), name

    def test_family_names_unique(self):
        view = lr.LRProcessView(3)
        names = [name for name, _ in lr.lr_adversary_family(view)]
        assert len(names) == len(set(names))

    def test_max_rounds_propagates(self):
        view = lr.LRProcessView(3)
        automaton = lr.lehmann_rabin_automaton(3)
        family = lr.lr_adversary_family(view, max_rounds=0)
        start = lr.canonical_states(3)["all_flip"]
        for name, adversary in family:
            assert adversary.choose(
                automaton, ExecutionFragment.initial(start)
            ) is None, name
