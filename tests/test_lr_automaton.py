"""Unit tests: the Lehmann-Rabin transition relation vs Figure 1."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.lehmann_rabin.automaton import (
    CRIT,
    DROP,
    DROPF,
    DROPS,
    EXIT,
    FLIP,
    LRProcessView,
    REM,
    SECOND,
    TRY,
    WAIT,
    lehmann_rabin_automaton,
    lr_signature,
    lr_time_of,
    process_transitions,
)
from repro.algorithms.lehmann_rabin.state import (
    FREE,
    PC,
    ProcessState,
    Side,
    TAKEN,
    initial_state,
    make_state,
)
from repro.automaton.signature import TIME_PASSAGE
from repro.errors import AutomatonError


def single(steps):
    assert len(steps) == 1
    return steps[0]


def ring(*locals_):
    return make_state(list(locals_))


R = lambda: ProcessState(PC.R, Side.LEFT)


class TestInstructionSemantics:
    def test_try_enters_trying_region(self):
        state = ring(R(), R(), R())
        step = single(process_transitions(state, 0))
        assert step.action == (TRY, 0)
        assert step.target.the_point().process(0).pc is PC.F

    def test_flip_is_a_fair_coin_into_W(self):
        state = ring(ProcessState(PC.F, Side.LEFT), R(), R())
        step = single(process_transitions(state, 0))
        assert step.action == (FLIP, 0)
        outcomes = {s.process(0) for s in step.target.support}
        assert outcomes == {
            ProcessState(PC.W, Side.LEFT),
            ProcessState(PC.W, Side.RIGHT),
        }
        for target, weight in step.target.items():
            assert weight == Fraction(1, 2)

    def test_wait_takes_free_first_resource(self):
        state = ring(ProcessState(PC.W, Side.RIGHT), R(), R())
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert step.action == (WAIT, 0)
        assert after.process(0).pc is PC.S
        assert after.resource(0) == TAKEN  # right resource of process 0

    def test_wait_busy_waits_when_taken(self):
        # Process 1 waits left (Res_0) while process 0 holds Res_0.
        state = ring(
            ProcessState(PC.S, Side.RIGHT),
            ProcessState(PC.W, Side.LEFT),
            R(),
        )
        step = single(process_transitions(state, 1))
        assert step.action == (WAIT, 1)
        assert step.target.the_point() == state  # unchanged (goto 2)

    def test_second_success_enters_pre_critical(self):
        state = ring(ProcessState(PC.S, Side.RIGHT), R(), R())
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert step.action == (SECOND, 0)
        assert after.process(0).pc is PC.P
        assert after.resource(2) == TAKEN  # left resource (second)

    def test_second_failure_moves_to_drop(self):
        # Process 0 at S-> (holds Res_0), its second is Res_2, held by
        # process 2 pointing right... wait: process 2's right resource
        # is Res_2 and it holds it when S->.
        state = ring(
            ProcessState(PC.S, Side.RIGHT),
            R(),
            ProcessState(PC.S, Side.RIGHT),
        )
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert after.process(0).pc is PC.D
        assert after.resource(2) == TAKEN  # still the neighbour's

    def test_drop_releases_first_resource_and_reflips(self):
        state = ring(ProcessState(PC.D, Side.RIGHT), R(), R())
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert step.action == (DROP, 0)
        assert after.process(0).pc is PC.F
        assert after.resource(0) == FREE

    def test_crit_announces_critical(self):
        state = ring(ProcessState(PC.P, Side.LEFT), R(), R())
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert step.action == (CRIT, 0)
        assert after.process(0).pc is PC.C
        # Resources stay held.
        assert after.resource(0) == TAKEN and after.resource(2) == TAKEN

    def test_exit_starts_exit_protocol(self):
        state = ring(ProcessState(PC.C, Side.LEFT), R(), R())
        step = single(process_transitions(state, 0))
        assert step.action == (EXIT, 0)
        assert step.target.the_point().process(0).pc is PC.EF

    def test_dropf_offers_both_nondeterministic_choices(self):
        state = ring(ProcessState(PC.EF, Side.LEFT), R(), R())
        steps = process_transitions(state, 0)
        assert len(steps) == 2
        assert all(step.action == (DROPF, 0) for step in steps)
        outcomes = {}
        for step in steps:
            after = step.target.the_point()
            outcomes[after.process(0).u] = (
                after.resource(2), after.resource(0)
            )
        # u := RIGHT frees the left resource (Res_2) and vice versa.
        assert outcomes[Side.RIGHT] == (FREE, TAKEN)
        assert outcomes[Side.LEFT] == (TAKEN, FREE)
        assert all(
            step.target.the_point().process(0).pc is PC.ES for step in steps
        )

    def test_drops_releases_remaining_resource(self):
        state = ring(ProcessState(PC.ES, Side.RIGHT), R(), R())
        step = single(process_transitions(state, 0))
        after = step.target.the_point()
        assert step.action == (DROPS, 0)
        assert after.process(0).pc is PC.ER
        assert after.resource(0) == FREE

    def test_rem_returns_to_remainder(self):
        state = ring(ProcessState(PC.ER, Side.LEFT), R(), R())
        step = single(process_transitions(state, 0))
        assert step.action == (REM, 0)
        assert step.target.the_point().process(0).pc is PC.R


class TestAutomatonAssembly:
    def test_all_processes_plus_time_passage(self):
        auto = lehmann_rabin_automaton(3)
        steps = auto.transitions(initial_state(3))
        # Three try steps plus one time-passage step.
        assert len(steps) == 4
        assert sum(1 for s in steps if s.action == TIME_PASSAGE) == 1

    def test_time_passage_advances_one_unit(self):
        auto = lehmann_rabin_automaton(3)
        state = initial_state(3)
        (passage,) = [
            s for s in auto.transitions(state) if s.action == TIME_PASSAGE
        ]
        assert passage.target.the_point().time == 1
        assert passage.target.the_point().untimed() == state.untimed()

    def test_signature_classifies_actions(self):
        signature = lr_signature(3)
        assert signature.is_external((TRY, 0))
        assert signature.is_external((CRIT, 2))
        assert signature.is_internal((FLIP, 1))
        assert signature.is_internal(TIME_PASSAGE)

    def test_ring_size_validated(self):
        with pytest.raises(AutomatonError):
            lehmann_rabin_automaton(1)

    def test_start_state_must_match_size(self):
        with pytest.raises(AutomatonError):
            lehmann_rabin_automaton(3, start=initial_state(4))

    def test_time_of(self):
        assert lr_time_of(initial_state(3)) == 0


class TestProcessView:
    def test_processes(self):
        view = LRProcessView(4)
        assert view.processes == (0, 1, 2, 3)

    def test_ready_excludes_remainder_and_critical(self):
        view = LRProcessView(3)
        state = ring(
            ProcessState(PC.F, Side.LEFT),
            ProcessState(PC.C, Side.LEFT),
            R(),
        )
        assert view.ready(state) == frozenset({0})

    def test_ready_includes_exit_protocol(self):
        view = LRProcessView(3)
        state = ring(ProcessState(PC.EF, Side.LEFT), R(), R())
        assert view.ready(state) == frozenset({0})

    def test_process_of(self):
        view = LRProcessView(3)
        assert view.process_of((FLIP, 2)) == 2
        assert view.process_of(TIME_PASSAGE) is None

    def test_minimum_ring_size(self):
        with pytest.raises(AutomatonError):
            LRProcessView(1)
