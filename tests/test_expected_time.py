"""Unit tests for the expected-time machinery (Section 6.2)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.proofs.expected_time import (
    RetryBranch,
    RetryRecursion,
    expected_time_upper_bound,
    geometric_bound,
)
from repro.proofs.statements import ArrowStatement, StateClass


class TestRetryBranch:
    def test_of_normalises(self):
        branch = RetryBranch.of(0.5, 5, retries=True)
        assert branch.probability == Fraction(1, 2)
        assert branch.time == Fraction(5)


class TestRetryRecursion:
    def test_paper_recursion_solves_to_sixty(self):
        recursion = RetryRecursion(
            [
                RetryBranch.of(Fraction(1, 8), 10, retries=False),
                RetryBranch.of(Fraction(1, 2), 5, retries=True),
                RetryBranch.of(Fraction(3, 8), 10, retries=True),
            ]
        )
        assert recursion.solve() == 60

    def test_no_retry_is_plain_expectation(self):
        recursion = RetryRecursion(
            [
                RetryBranch.of(Fraction(1, 2), 2, retries=False),
                RetryBranch.of(Fraction(1, 2), 4, retries=False),
            ]
        )
        assert recursion.solve() == 3

    def test_geometric_structure(self):
        # Success 1/2 costing 1, failure 1/2 costing 1 and retrying:
        # E = 1 / (1/2) = 2.
        recursion = RetryRecursion(
            [
                RetryBranch.of(Fraction(1, 2), 1, retries=False),
                RetryBranch.of(Fraction(1, 2), 1, retries=True),
            ]
        )
        assert recursion.solve() == 2

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ProofError):
            RetryRecursion([RetryBranch.of(Fraction(1, 2), 1, retries=False)])

    def test_full_retry_mass_rejected(self):
        with pytest.raises(ProofError):
            RetryRecursion([RetryBranch.of(1, 1, retries=True)])

    def test_empty_rejected(self):
        with pytest.raises(ProofError):
            RetryRecursion([])

    def test_negative_time_rejected(self):
        with pytest.raises(ProofError):
            RetryRecursion(
                [
                    RetryBranch.of(Fraction(1, 2), -1, retries=False),
                    RetryBranch.of(Fraction(1, 2), 1, retries=False),
                ]
            )

    def test_matches_simulation(self):
        import random

        recursion = RetryRecursion(
            [
                RetryBranch.of(Fraction(1, 4), 3, retries=False),
                RetryBranch.of(Fraction(3, 4), 2, retries=True),
            ]
        )
        exact = recursion.solve()  # (1/4*3 + 3/4*2) / (1/4) = 9
        assert exact == 9
        rng = random.Random(0)
        total = 0.0
        runs = 20_000
        for _ in range(runs):
            time = 0.0
            while True:
                if rng.random() < 0.25:
                    time += 3
                    break
                time += 2
            total += time
        assert abs(total / runs - float(exact)) < 0.2


class TestDerivedBounds:
    def test_geometric_bound(self):
        statement = ArrowStatement(
            StateClass("T", lambda s: True),
            StateClass("C", lambda s: True),
            13,
            Fraction(1, 8),
            "S",
        )
        assert geometric_bound(statement) == 104

    def test_geometric_bound_rejects_zero_probability(self):
        statement = ArrowStatement(
            StateClass("T", lambda s: True),
            StateClass("C", lambda s: True),
            13,
            0,
            "S",
        )
        with pytest.raises(ProofError):
            geometric_bound(statement)

    def test_expected_time_upper_bound_is_the_papers_63(self):
        recursion = RetryRecursion(
            [
                RetryBranch.of(Fraction(1, 8), 10, retries=False),
                RetryBranch.of(Fraction(1, 2), 5, retries=True),
                RetryBranch.of(Fraction(3, 8), 10, retries=True),
            ]
        )
        assert expected_time_upper_bound(2, recursion, 1) == 63
