"""Shared fixtures: small hand-built automata used across the suite."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.probability.space import FiniteDistribution


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Point the manifest store at a per-test directory.

    Every CLI invocation appends a provenance record by default; without
    this, tests exercising ``repro.cli.main`` would litter ``.repro/``
    in the working tree and see each other's manifests.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))


@pytest.fixture
def coin_walk() -> ExplicitAutomaton[str]:
    """start --hop1--> middle --hop2--> goal, each hop a retrying coin."""
    signature = ActionSignature(internal=frozenset({"hop1", "hop2"}))
    steps = [
        Transition("start", "hop1", FiniteDistribution.bernoulli("middle", "start")),
        Transition("middle", "hop2", FiniteDistribution.bernoulli("goal", "middle")),
    ]
    return ExplicitAutomaton(
        states=["start", "middle", "goal"],
        start_states=["start"],
        signature=signature,
        steps=steps,
    )


@pytest.fixture
def branching_automaton() -> ExplicitAutomaton[str]:
    """The Section 2 motivating example: two steps from s0 with different
    probabilities of reaching s1 (1/2 vs 1/3)."""
    signature = ActionSignature(internal=frozenset({"a", "b"}))
    steps = [
        Transition(
            "s0", "a",
            FiniteDistribution({"s1": Fraction(1, 2), "s2": Fraction(1, 2)}),
        ),
        Transition(
            "s0", "b",
            FiniteDistribution({"s1": Fraction(1, 3), "s2": Fraction(2, 3)}),
        ),
    ]
    return ExplicitAutomaton(
        states=["s0", "s1", "s2"],
        start_states=["s0"],
        signature=signature,
        steps=steps,
    )


@pytest.fixture
def deterministic_chain() -> ExplicitAutomaton[int]:
    """0 -> 1 -> 2 -> 3, all Dirac steps, fully probabilistic."""
    signature = ActionSignature(internal=frozenset({"step"}))
    steps = [Transition.deterministic(i, "step", i + 1) for i in range(3)]
    return ExplicitAutomaton(
        states=[0, 1, 2, 3],
        start_states=[0],
        signature=signature,
        steps=steps,
    )
