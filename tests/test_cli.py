"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        # --n and --prop parse as None and resolve to the selected
        # model's own defaults (3 / "composed" for lr) at dispatch.
        args = build_parser().parse_args(["verify"])
        assert args.n is None and args.seed == 0 and args.samples == 80
        assert args.workers == 1 and args.model == "lr"

    def test_workers_flag(self):
        args = build_parser().parse_args(["check", "--workers", "4"])
        assert args.workers == 4 and args.prop is None
        assert not args.early_stop and not args.json

    def test_overrides(self):
        args = build_parser().parse_args(
            ["verify", "--n", "4", "--seed", "7", "--samples", "10"]
        )
        assert (args.n, args.seed, args.samples) == (4, 7, 10)


class TestCommands:
    def test_prove(self, capsys):
        assert main(["prove"]) == 0
        out = capsys.readouterr().out
        assert "T --13-->_1/8 C" in out
        assert "63" in out

    def test_verify_small(self, capsys):
        assert main(["verify", "--samples", "6"]) == 0
        out = capsys.readouterr().out
        assert "Prop A.11" in out
        assert "REFUTED" not in out

    def test_check_leaf(self, capsys):
        assert main(["check", "--prop", "A.14", "--samples", "6"]) == 0
        out = capsys.readouterr().out
        assert "A.14" in out and "REFUTED" not in out

    def test_check_unknown_prop(self, capsys):
        assert main(["check", "--prop", "A.99"]) == 2
        err = capsys.readouterr().err
        assert "unknown proposition" in err

    def test_check_json_identical_across_workers(self, capsys):
        argv = ["check", "--samples", "5", "--seed", "3", "--json"]
        assert main([*argv, "--workers", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert sequential == parallel
        assert '"kind": "arrow_check"' in sequential

    def test_chain(self, capsys):
        assert main(["chain", "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "T --13-->_1/8 C" in out
        assert "REFUTED" not in out

    def test_exact_small(self, capsys):
        assert main(["exact", "--states", "2"]) == 0
        out = capsys.readouterr().out
        assert "A.14" in out and "FAILS" not in out

    def test_appendix(self, capsys):
        assert main(["appendix"]) == 0
        out = capsys.readouterr().out
        assert "A.9" in out and "FAILS" not in out

    def test_expected_time_small(self, capsys):
        assert main(["expected-time", "--samples", "8"]) == 0
        out = capsys.readouterr().out
        assert "adversary" in out and "FAILS" not in out

    def test_election(self, capsys):
        assert main(["election", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "A1 | A2 | A3" in out

    def test_benor(self, capsys):
        assert main(["benor"]) == 0
        out = capsys.readouterr().out
        assert "Init --10-->_1/8 Decided" in out

    def test_independence(self, capsys):
        assert main(["independence"]) == 0
        out = capsys.readouterr().out
        assert "peek-q-on-T" in out and "FAILS" not in out

    def test_exhaustive(self, capsys):
        assert main(["exhaustive"]) == 0
        out = capsys.readouterr().out
        assert "A.11" in out and "1/2" in out
        assert "FAILS" not in out

    def test_all(self, capsys):
        assert main(["all", "--states", "2"]) == 0
        out = capsys.readouterr().out
        assert "T --13-->_1/8 C" in out
        assert "A.12" in out
        assert "peek-q-on-H" in out
        assert "FAILS" not in out and "REFUTED" not in out


class TestModelsFrontEnd:
    def test_models_lists_every_registered_model(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Registered models" in out
        for name in ("lr", "benor", "election", "herman"):
            assert name in out
        assert "untimed+symmetry" in out

    def test_models_json_is_canonical(self, capsys):
        import json

        assert main(["models", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["name"] for row in rows} == {
            "lr", "benor", "election", "herman",
        }
        lr = next(row for row in rows if row["name"] == "lr")
        assert lr["default_prop"] == "composed"
        assert lr["n_default"] == 3

    def test_unknown_model_is_a_usage_error(self, capsys):
        assert main(["check", "--model", "nope", "--no-manifest"]) == 2
        err = capsys.readouterr().err
        assert "unknown model" in err and "herman" in err

    def test_check_herman_end_to_end(self, capsys):
        assert main([
            "check", "--model", "herman", "--samples", "4",
            "--no-manifest",
        ]) == 0
        out = capsys.readouterr().out
        assert "H.1" in out and "REFUTED" not in out

    def test_lr_flag_matches_omitted_flag(self, capsys):
        argv = ["check", "--samples", "5", "--no-manifest"]
        assert main(argv) == 0
        implicit = capsys.readouterr().out
        assert main([*argv, "--model", "lr"]) == 0
        explicit = capsys.readouterr().out
        assert implicit == explicit
