"""Unit tests for execution fragments (Section 2 operations)."""

from __future__ import annotations

import pytest

from repro.automaton.execution import ExecutionFragment
from repro.errors import ExecutionError


def frag(*parts):
    """Build a fragment from alternating state, action, state, ..."""
    states = list(parts[0::2])
    actions = list(parts[1::2])
    return ExecutionFragment(states, actions)


class TestConstruction:
    def test_needs_a_state(self):
        with pytest.raises(ExecutionError):
            ExecutionFragment([], [])

    def test_alternation_arity_checked(self):
        with pytest.raises(ExecutionError):
            ExecutionFragment(["s0", "s1"], [])
        with pytest.raises(ExecutionError):
            ExecutionFragment(["s0"], ["a"])

    def test_initial(self):
        fragment = ExecutionFragment.initial("s0")
        assert fragment.fstate == "s0" and fragment.lstate == "s0"
        assert len(fragment) == 0

    def test_extend(self):
        fragment = ExecutionFragment.initial("s0").extend("a", "s1")
        assert fragment.lstate == "s1"
        assert fragment.actions == ("a",)
        assert len(fragment) == 1


class TestAccessors:
    def test_fstate_lstate(self):
        fragment = frag("s0", "a", "s1", "b", "s2")
        assert fragment.fstate == "s0"
        assert fragment.lstate == "s2"

    def test_states_and_actions(self):
        fragment = frag("s0", "a", "s1", "b", "s2")
        assert fragment.states == ("s0", "s1", "s2")
        assert fragment.actions == ("a", "b")

    def test_steps_iteration(self):
        fragment = frag("s0", "a", "s1", "b", "s2")
        assert list(fragment.steps()) == [("s0", "a", "s1"), ("s1", "b", "s2")]


class TestConcat:
    def test_concat_matching_endpoints(self):
        left = frag("s0", "a", "s1")
        right = frag("s1", "b", "s2")
        joined = left.concat(right)
        assert joined.states == ("s0", "s1", "s2")
        assert joined.actions == ("a", "b")

    def test_concat_shared_state_once(self):
        left = frag("s0", "a", "s1")
        right = ExecutionFragment.initial("s1")
        assert left.concat(right) == left

    def test_concat_mismatch_rejected(self):
        with pytest.raises(ExecutionError):
            frag("s0", "a", "s1").concat(frag("s2", "b", "s3"))

    def test_concat_associative(self):
        a = frag("s0", "x", "s1")
        b = frag("s1", "y", "s2")
        c = frag("s2", "z", "s3")
        assert a.concat(b).concat(c) == a.concat(b.concat(c))


class TestPrefix:
    def test_reflexive(self):
        fragment = frag("s0", "a", "s1")
        assert fragment.is_prefix_of(fragment)

    def test_proper_prefix(self):
        short = frag("s0", "a", "s1")
        long = frag("s0", "a", "s1", "b", "s2")
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)

    def test_divergent_not_prefix(self):
        assert not frag("s0", "a", "s1").is_prefix_of(frag("s0", "b", "s1"))

    def test_suffix_after(self):
        long = frag("s0", "a", "s1", "b", "s2")
        suffix = long.suffix_after(frag("s0", "a", "s1"))
        assert suffix == frag("s1", "b", "s2")

    def test_suffix_after_full_prefix_is_point(self):
        fragment = frag("s0", "a", "s1")
        assert fragment.suffix_after(fragment) == ExecutionFragment.initial("s1")

    def test_suffix_after_non_prefix_rejected(self):
        with pytest.raises(ExecutionError):
            frag("s0", "a", "s1").suffix_after(frag("s9", "a", "s1"))

    def test_concat_suffix_roundtrip(self):
        long = frag("s0", "a", "s1", "b", "s2", "c", "s3")
        prefix = frag("s0", "a", "s1")
        assert prefix.concat(long.suffix_after(prefix)) == long

    def test_prefix_of_length(self):
        long = frag("s0", "a", "s1", "b", "s2")
        assert long.prefix_of_length(1) == frag("s0", "a", "s1")
        assert long.prefix_of_length(0) == ExecutionFragment.initial("s0")

    def test_prefix_of_length_bounds(self):
        fragment = frag("s0", "a", "s1")
        with pytest.raises(ExecutionError):
            fragment.prefix_of_length(2)
        with pytest.raises(ExecutionError):
            fragment.prefix_of_length(-1)


class TestValidity:
    def test_valid_fragment(self, coin_walk):
        fragment = frag("start", "hop1", "middle", "hop2", "goal")
        assert fragment.is_valid_in(coin_walk)

    def test_self_loop_valid(self, coin_walk):
        fragment = frag("start", "hop1", "start", "hop1", "middle")
        assert fragment.is_valid_in(coin_walk)

    def test_wrong_action_invalid(self, coin_walk):
        fragment = frag("start", "hop2", "middle")
        assert not fragment.is_valid_in(coin_walk)

    def test_unreachable_target_invalid(self, coin_walk):
        fragment = frag("start", "hop1", "goal")
        assert not fragment.is_valid_in(coin_walk)


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = frag("s0", "a", "s1")
        b = frag("s0", "a", "s1")
        assert a == b and hash(a) == hash(b)

    def test_usable_in_sets(self):
        fragments = {frag("s0", "a", "s1"), frag("s0", "a", "s1")}
        assert len(fragments) == 1

    def test_repr_mentions_states_and_actions(self):
        text = repr(frag("s0", "go", "s1"))
        assert "s0" in text and "go" in text and "s1" in text
