"""Unit tests for the deterministic ordered-philosophers baseline."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import ordered as od
from repro.algorithms.ordered.automaton import (
    OPC,
    OrderedState,
    adjacent_resources,
    ordered_transitions,
)
from repro.automaton.execution import ExecutionFragment
from repro.errors import AutomatonError
from repro.execution.sampler import sample_time_until


def state_of(pcs, resources=None, time=Fraction(0)):
    n = len(pcs)
    return OrderedState(
        tuple(pcs), tuple(resources or [False] * n), time
    )


class TestGeometry:
    def test_pickup_order_is_ascending_resource_index(self):
        assert adjacent_resources(1, 4) == (0, 1)
        assert adjacent_resources(2, 4) == (1, 2)

    def test_one_process_is_left_handed(self):
        # Process 0's resources are n-1 (left) and 0 (right); ascending
        # order makes it grab its RIGHT resource first - the asymmetry.
        assert adjacent_resources(0, 4) == (0, 3)


class TestTransitions:
    def test_try_then_waits(self):
        state = state_of([OPC.R, OPC.R])
        steps = [
            s for s in ordered_transitions(state) if s.action == ("try", 0)
        ]
        assert steps[0].target.the_point().pcs[0] is OPC.W1

    def test_wait1_takes_free_resource(self):
        state = state_of([OPC.W1, OPC.R])
        (step,) = [
            s for s in ordered_transitions(state) if s.action == ("wait1", 0)
        ]
        after = step.target.the_point()
        assert after.pcs[0] is OPC.W2
        first, _ = adjacent_resources(0, 2)
        assert after.resources[first]

    def test_wait1_busy_waits_when_taken(self):
        first, _ = adjacent_resources(0, 2)
        resources = [False, False]
        resources[first] = True
        state = state_of([OPC.W1, OPC.R], resources)
        (step,) = [
            s for s in ordered_transitions(state) if s.action == ("wait1", 0)
        ]
        assert step.target.the_point() == state

    def test_hold_and_wait_keeps_first_resource(self):
        first, second = adjacent_resources(0, 2)
        resources = [False, False]
        resources[first] = True
        resources[second] = True  # second taken: must busy-wait
        state = state_of([OPC.W2, OPC.R], resources)
        (step,) = [
            s for s in ordered_transitions(state) if s.action == ("wait2", 0)
        ]
        after = step.target.the_point()
        assert after == state  # still holding first, still waiting

    def test_full_cycle_returns_to_remainder(self):
        n = 2
        automaton = od.ordered_automaton(n)
        view = od.OrderedProcessView(n)

        class EagerPolicy(FifoRoundPolicy):
            """Also fires the user actions try/exit for process 0."""

            def next_move(self, automaton, fragment, pending, view):
                state = fragment.lstate
                if state.pcs[0] in (OPC.R, OPC.C):
                    for step in automaton.transitions(state):
                        if step.action in (("try", 0), ("exit", 0)):
                            return step
                return super().next_move(automaton, fragment, pending, view)

        adversary = RoundBasedAdversary(view, EagerPolicy())
        fragment = ExecutionFragment.initial(od.ordered_initial_state(n))
        rng = random.Random(0)
        seen_pcs = set()
        for _ in range(40):
            step = adversary.checked_choose(automaton, fragment)
            fragment = fragment.extend(step.action, step.target.sample(rng))
            seen_pcs.add(fragment.lstate.pcs[0])
        assert {OPC.W1, OPC.W2, OPC.P, OPC.C, OPC.E1, OPC.E2, OPC.ER} <= seen_pcs

    def test_ring_size_validated(self):
        with pytest.raises(AutomatonError):
            od.ordered_automaton(1)


class TestSafetyAndProgress:
    def run_walk(self, n, policy, steps=200, seed=0):
        automaton = od.ordered_automaton(n)
        adversary = RoundBasedAdversary(od.OrderedProcessView(n), policy)
        rng = random.Random(seed)
        start = state_of([OPC.W1] * n)
        fragment = ExecutionFragment.initial(start)
        for _ in range(steps):
            step = adversary.checked_choose(automaton, fragment)
            if step is None:
                break
            fragment = fragment.extend(step.action, step.target.sample(rng))
        return fragment.states

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_resource_invariant_preserved(self, n):
        for state in self.run_walk(n, FifoRoundPolicy()):
            assert od.ordered_resource_invariant(state)
            assert od.ordered_mutual_exclusion(state)

    def test_no_deadlock_all_waiting(self):
        # The classic circular-wait scenario: everyone at W1.  The
        # resource order guarantees someone always progresses.
        for policy in (
            FifoRoundPolicy(), ReversedRoundPolicy(), HashedRandomRoundPolicy(3)
        ):
            n = 4
            automaton = od.ordered_automaton(n)
            adversary = RoundBasedAdversary(od.OrderedProcessView(n), policy)
            elapsed = sample_time_until(
                automaton,
                adversary,
                ExecutionFragment.initial(state_of([OPC.W1] * n)),
                od.ordered_in_critical,
                od.ordered_time_of,
                random.Random(0),
                5_000,
            )
            assert elapsed is not None
            assert elapsed <= n + 2

    def test_full_contention_reaches_c_within_three_rounds_exactly(self):
        """The deterministic analogue of the paper's claims: from the
        all-waiting state, *every* round-synchronous schedule reaches
        ``C`` within 3 rounds with probability 1 (exact check — the
        automaton is deterministic, so this is a pure game against the
        scheduler)."""
        from repro.mdp.bounded import min_reach_probability_rounds

        n = 4
        automaton = od.ordered_automaton(n)
        view = od.OrderedProcessView(n)
        start = state_of([OPC.W1] * n)
        value = min_reach_probability_rounds(
            automaton, view, od.ordered_in_critical, start, 3,
            strip_time=lambda s: s.untimed(),
        )
        assert value == 1

    def test_regions(self):
        trying = state_of([OPC.W1, OPC.R])
        critical = state_of([OPC.C, OPC.R], [True, True])
        assert od.ordered_in_trying(trying)
        assert not od.ordered_in_critical(trying)
        assert od.ordered_in_critical(critical)
        assert od.ORDERED_T_CLASS.contains(trying)
        assert od.ORDERED_C_CLASS.contains(critical)
