"""Unit tests for action signatures."""

from __future__ import annotations

import pytest

from repro.automaton.signature import TIME_PASSAGE, ActionSignature
from repro.errors import AutomatonError


class TestConstruction:
    def test_disjointness_enforced(self):
        with pytest.raises(AutomatonError):
            ActionSignature(external=frozenset({"a"}), internal=frozenset({"a"}))

    def test_iterables_are_frozen(self):
        signature = ActionSignature(external=["a", "b"], internal=["c"])
        assert signature.external == frozenset({"a", "b"})
        assert signature.internal == frozenset({"c"})

    def test_empty_signature_allowed(self):
        signature = ActionSignature()
        assert signature.actions == frozenset()


class TestQueries:
    def test_actions_union(self):
        signature = ActionSignature(external={"a"}, internal={"b"})
        assert signature.actions == frozenset({"a", "b"})

    def test_is_external_internal(self):
        signature = ActionSignature(external={"a"}, internal={"b"})
        assert signature.is_external("a") and not signature.is_external("b")
        assert signature.is_internal("b") and not signature.is_internal("a")

    def test_contains(self):
        signature = ActionSignature(external={"a"}, internal={"b"})
        assert "a" in signature and "b" in signature and "c" not in signature

    def test_time_passage_constant(self):
        assert TIME_PASSAGE == "nu"


class TestHide:
    def test_hide_moves_actions(self):
        signature = ActionSignature(external={"a", "b"}, internal={"c"})
        hidden = signature.hide({"a"})
        assert hidden.is_internal("a")
        assert hidden.external == frozenset({"b"})

    def test_hide_non_external_rejected(self):
        signature = ActionSignature(external={"a"}, internal={"c"})
        with pytest.raises(AutomatonError):
            signature.hide({"c"})

    def test_hide_unknown_rejected(self):
        signature = ActionSignature(external={"a"})
        with pytest.raises(AutomatonError):
            signature.hide({"zzz"})


class TestMerge:
    def test_merge_unions_components(self):
        left = ActionSignature(external={"a", "shared"}, internal={"x"})
        right = ActionSignature(external={"b", "shared"}, internal={"y"})
        merged = left.merge(right)
        assert merged.external == frozenset({"a", "b", "shared"})
        assert merged.internal == frozenset({"x", "y"})

    def test_merge_rejects_shared_internal(self):
        left = ActionSignature(internal={"x"})
        right = ActionSignature(external={"x"})
        with pytest.raises(AutomatonError):
            left.merge(right)

    def test_merge_rejects_internal_internal_clash(self):
        left = ActionSignature(internal={"x"})
        right = ActionSignature(internal={"x"})
        with pytest.raises(AutomatonError):
            left.merge(right)
