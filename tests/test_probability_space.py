"""Unit tests for finite probability spaces."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.errors import ProbabilityError
from repro.probability.space import FiniteDistribution, ProbabilitySpace, as_fraction


class TestConstruction:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution({"a": Fraction(1, 2), "b": Fraction(1, 4)})

    def test_negative_weight_rejected(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution({"a": Fraction(3, 2), "b": Fraction(-1, 2)})

    def test_empty_support_rejected(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution({})

    def test_zero_weights_dropped_from_support(self):
        dist = FiniteDistribution({"a": 1, "b": 0})
        assert dist.support == frozenset({"a"})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution({"a": 0, "b": 0})

    def test_duplicate_points_merge(self):
        dist = FiniteDistribution.from_pairs(
            [("a", Fraction(1, 2)), ("a", Fraction(1, 4)), ("b", Fraction(1, 4))]
        )
        assert dist["a"] == Fraction(3, 4)

    def test_float_weights_become_exact(self):
        dist = FiniteDistribution({"a": 0.5, "b": 0.5})
        assert dist["a"] == Fraction(1, 2)

    def test_string_weights_accepted(self):
        dist = FiniteDistribution({"a": "1/3", "b": "2/3"})
        assert dist["a"] == Fraction(1, 3)

    def test_probability_space_alias(self):
        assert ProbabilitySpace is FiniteDistribution


class TestConstructors:
    def test_dirac_support_and_mass(self):
        dist = FiniteDistribution.dirac("x")
        assert dist.support == frozenset({"x"})
        assert dist["x"] == 1

    def test_dirac_is_dirac(self):
        assert FiniteDistribution.dirac(42).is_dirac()

    def test_the_point_of_dirac(self):
        assert FiniteDistribution.dirac(42).the_point() == 42

    def test_the_point_rejects_non_dirac(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution.uniform([1, 2]).the_point()

    def test_uniform_weights(self):
        dist = FiniteDistribution.uniform(["a", "b", "c", "d"])
        assert all(dist[x] == Fraction(1, 4) for x in "abcd")

    def test_uniform_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            FiniteDistribution.uniform([])

    def test_uniform_merges_duplicates(self):
        dist = FiniteDistribution.uniform(["a", "a", "b"])
        assert dist["a"] == Fraction(2, 3)

    def test_bernoulli_default_fair(self):
        dist = FiniteDistribution.bernoulli("h", "t")
        assert dist["h"] == Fraction(1, 2)
        assert dist["t"] == Fraction(1, 2)

    def test_bernoulli_biased(self):
        dist = FiniteDistribution.bernoulli("h", "t", Fraction(1, 3))
        assert dist["h"] == Fraction(1, 3)
        assert dist["t"] == Fraction(2, 3)


class TestMeasure:
    def test_point_probability(self):
        dist = FiniteDistribution({"a": Fraction(1, 3), "b": Fraction(2, 3)})
        assert dist.probability("a") == Fraction(1, 3)

    def test_missing_point_probability_zero(self):
        dist = FiniteDistribution.dirac("a")
        assert dist.probability("zzz") == 0
        assert dist["zzz"] == 0

    def test_set_probability(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        assert dist.probability({1, 2}) == Fraction(1, 2)

    def test_list_probability_deduplicates(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        assert dist.probability([1, 1, 2]) == Fraction(1, 2)

    def test_predicate_probability(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        assert dist.probability(lambda x: x % 2 == 0) == Fraction(1, 2)

    def test_full_support_probability_is_one(self):
        dist = FiniteDistribution.uniform(["a", "b", "c"])
        assert dist.probability(dist.support) == 1

    def test_contains_and_iter_and_len(self):
        dist = FiniteDistribution.uniform([1, 2])
        assert 1 in dist and 3 not in dist
        assert sorted(dist) == [1, 2]
        assert len(dist) == 2

    def test_items_sum_to_one(self):
        dist = FiniteDistribution.uniform(range(7))
        assert sum(w for _, w in dist.items()) == 1


class TestTransformations:
    def test_map_pushforward(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        image = dist.map(lambda x: x % 2)
        assert image[0] == Fraction(1, 2)
        assert image[1] == Fraction(1, 2)

    def test_map_preserves_total_mass(self):
        dist = FiniteDistribution({"a": Fraction(1, 3), "b": Fraction(2, 3)})
        image = dist.map(lambda _: "z")
        assert image["z"] == 1

    def test_product_measure(self):
        left = FiniteDistribution.bernoulli("h", "t")
        right = FiniteDistribution.bernoulli("H", "T", Fraction(1, 3))
        joint = left.product(right)
        assert joint[("h", "H")] == Fraction(1, 6)
        assert joint[("t", "T")] == Fraction(1, 3)

    def test_condition(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        conditioned = dist.condition(lambda x: x <= 2)
        assert conditioned[1] == Fraction(1, 2)
        assert conditioned[3] == 0

    def test_condition_on_set(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        conditioned = dist.condition({4})
        assert conditioned.is_dirac() and conditioned.the_point() == 4

    def test_condition_null_event_rejected(self):
        dist = FiniteDistribution.uniform([1, 2])
        with pytest.raises(ProbabilityError):
            dist.condition(lambda x: x > 10)

    def test_expectation(self):
        dist = FiniteDistribution.uniform([1, 2, 3, 4])
        assert dist.expectation(lambda x: x) == Fraction(5, 2)

    def test_convex_combination(self):
        a = FiniteDistribution.dirac("x")
        b = FiniteDistribution.dirac("y")
        mixed = FiniteDistribution.convex([(a, Fraction(1, 4)), (b, Fraction(3, 4))])
        assert mixed["x"] == Fraction(1, 4)
        assert mixed["y"] == Fraction(3, 4)

    def test_convex_requires_unit_mass(self):
        a = FiniteDistribution.dirac("x")
        with pytest.raises(ProbabilityError):
            FiniteDistribution.convex([(a, Fraction(1, 2))])

    def test_convex_rejects_negative_coefficient(self):
        a = FiniteDistribution.dirac("x")
        b = FiniteDistribution.dirac("y")
        with pytest.raises(ProbabilityError):
            FiniteDistribution.convex(
                [(a, Fraction(3, 2)), (b, Fraction(-1, 2))]
            )


class TestSampling:
    def test_sampling_is_seed_deterministic(self):
        dist = FiniteDistribution.uniform(range(10))
        first = [dist.sample(random.Random(7)) for _ in range(5)]
        second = [dist.sample(random.Random(7)) for _ in range(5)]
        assert first == second

    def test_sample_stays_in_support(self):
        dist = FiniteDistribution({"a": Fraction(1, 3), "b": Fraction(2, 3)})
        rng = random.Random(0)
        assert all(dist.sample(rng) in dist.support for _ in range(100))

    def test_sample_frequency_roughly_matches(self):
        dist = FiniteDistribution.bernoulli(1, 0, Fraction(3, 4))
        rng = random.Random(1)
        hits = sum(dist.sample(rng) for _ in range(4000))
        assert 0.70 < hits / 4000 < 0.80

    def test_dirac_sampling_is_constant(self):
        dist = FiniteDistribution.dirac("only")
        rng = random.Random(2)
        assert all(dist.sample(rng) == "only" for _ in range(10))


class TestValueSemantics:
    def test_equality_by_weights(self):
        a = FiniteDistribution({"x": Fraction(1, 2), "y": Fraction(1, 2)})
        b = FiniteDistribution.uniform(["x", "y"])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = FiniteDistribution.bernoulli("x", "y")
        b = FiniteDistribution.bernoulli("x", "y", Fraction(1, 3))
        assert a != b

    def test_usable_as_dict_key(self):
        a = FiniteDistribution.dirac("x")
        table = {a: "hit"}
        assert table[FiniteDistribution.dirac("x")] == "hit"

    def test_repr_is_stable(self):
        a = FiniteDistribution.uniform(["b", "a"])
        assert repr(a) == repr(FiniteDistribution.uniform(["a", "b"]))


class TestAsFraction:
    def test_int(self):
        assert as_fraction(1) == Fraction(1)

    def test_float_common_literal(self):
        assert as_fraction(0.25) == Fraction(1, 4)

    def test_string(self):
        assert as_fraction("7/8") == Fraction(7, 8)

    def test_fraction_passthrough(self):
        f = Fraction(3, 7)
        assert as_fraction(f) is f

    def test_rejects_other_types(self):
        with pytest.raises(ProbabilityError):
            as_fraction(object())
