"""Unit tests for parallel composition, renaming, and relabelling."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.composition import (
    parallel_compose,
    relabel_states,
    rename_actions,
)
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.errors import AutomatonError
from repro.probability.space import FiniteDistribution


def flipper(name_prefix: str = "") -> ExplicitAutomaton[str]:
    """idle --flip--> heads/tails (fair)."""
    flip = name_prefix + "flip"
    return ExplicitAutomaton(
        states=["idle", "heads", "tails"],
        start_states=["idle"],
        signature=ActionSignature(external={flip}),
        steps=[
            Transition("idle", flip, FiniteDistribution.bernoulli("heads", "tails"))
        ],
    )


def toggler() -> ExplicitAutomaton[str]:
    """on <--toggle--> off (deterministic, private action)."""
    return ExplicitAutomaton(
        states=["on", "off"],
        start_states=["off"],
        signature=ActionSignature(external={"toggle"}),
        steps=[
            Transition.deterministic("off", "toggle", "on"),
            Transition.deterministic("on", "toggle", "off"),
        ],
    )


class TestParallelCompose:
    def test_states_are_pairs(self):
        composed = parallel_compose(flipper("l_"), flipper("r_"))
        assert ("idle", "idle") in composed.states
        assert composed.start_states == (("idle", "idle"),)

    def test_private_actions_interleave(self):
        composed = parallel_compose(flipper("l_"), flipper("r_"))
        steps = composed.transitions(("idle", "idle"))
        assert {step.action for step in steps} == {"l_flip", "r_flip"}

    def test_private_step_fixes_other_component(self):
        composed = parallel_compose(flipper("l_"), toggler())
        (left_step,) = composed.transitions_for(("idle", "off"), "l_flip")
        assert left_step.target.support == {("heads", "off"), ("tails", "off")}

    def test_shared_action_synchronises_with_product(self):
        composed = parallel_compose(flipper(), flipper())
        (step,) = composed.transitions(("idle", "idle"))
        assert step.action == "flip"
        assert step.target[("heads", "tails")] == Fraction(1, 4)
        assert len(step.target) == 4

    def test_shared_action_blocked_when_one_side_disabled(self):
        composed = parallel_compose(flipper(), flipper())
        # After both flipped, nobody enables flip again.
        assert composed.transitions(("heads", "tails")) == ()

    def test_incompatible_internal_actions_rejected(self):
        left = ExplicitAutomaton(
            ["a"], ["a"], ActionSignature(internal={"x"}), []
        )
        right = ExplicitAutomaton(
            ["b"], ["b"], ActionSignature(external={"x"}), []
        )
        with pytest.raises(AutomatonError):
            parallel_compose(left, right)

    def test_reachable_joint_behaviour(self):
        from repro.automaton.reachability import reachable_states

        composed = parallel_compose(flipper("l_"), flipper("r_"))
        assert len(reachable_states(composed)) == 9


class TestRenameActions:
    def test_rename_updates_signature_and_steps(self):
        renamed = rename_actions(flipper(), {"flip": "flip_1"})
        assert "flip_1" in renamed.signature
        assert "flip" not in renamed.signature
        (step,) = renamed.transitions("idle")
        assert step.action == "flip_1"

    def test_unmapped_actions_kept(self):
        renamed = rename_actions(toggler(), {})
        (step,) = renamed.transitions("off")
        assert step.action == "toggle"


class TestRelabelStates:
    def test_relabel_applies_everywhere(self):
        relabelled = relabel_states(toggler(), lambda s: ("proc", s))
        assert relabelled.start_states == ((("proc", "off")),)
        (step,) = relabelled.transitions(("proc", "off"))
        assert step.target.the_point() == ("proc", "on")

    def test_non_injective_rejected(self):
        with pytest.raises(AutomatonError):
            relabel_states(toggler(), lambda s: "same")
