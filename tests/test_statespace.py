"""Cross-engine equivalence suite for the compiled state-space core.

The contract under test (``docs/statespace.md``): a verification report
is a pure function of the problem and the root seed — *never* of the
evaluation strategy.  ``--engine tree``, ``--engine compiled``,
``--engine batched``, and ``--engine auto`` must produce byte-identical
CLI JSON for every seed, worker count, and guard mode, and the interned
representation itself is pinned by golden state/transition counts for
the n=3 ring.
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_lr_statement
from repro.cli import main
from repro.contracts import OFF_CONFIG, WARN, GuardConfig
from repro.errors import StateBudgetExceeded, VerificationError
from repro.parallel import fork_available
from repro.statespace import (
    BatchedEngine,
    CompiledEngine,
    SpaceSpec,
    TreeEngine,
    build_engine,
    compile_adversary,
    compile_space,
    resolve_engine_name,
)

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

SAMPLES = 12
ENGINES = ("tree", "compiled", "batched", "auto")


@pytest.fixture(scope="module")
def setup3() -> LRExperimentSetup:
    return LRExperimentSetup.build(3, random_seeds=(1,))


@pytest.fixture(scope="module")
def space3(setup3):
    starts = tuple(lr.canonical_states(3).values())
    return compile_space(setup3.automaton, starts, setup3.space_spec())


@pytest.fixture(scope="module")
def statement():
    return lr.lehmann_rabin_proof().final_statement


def engine_for(setup3, statement, **kwargs):
    return build_engine(
        setup3.automaton,
        setup3.adversaries,
        tuple(lr.canonical_states(3).values()),
        statement.target.contains,
        lr.lr_time_of,
        statement.time_bound,
        200,
        spec=setup3.space_spec(),
        **kwargs,
    )


class TestGoldenCounts:
    """The interned n=3 space is pinned exactly.

    These counts change only when the model itself changes — any drift
    here means the Lehmann-Rabin dynamics (or the untimed quotient)
    moved, which invalidates every cached intuition about the space.
    """

    def test_state_count(self, space3):
        assert space3.n_states == 4338

    def test_transition_count(self, space3):
        assert sum(len(steps) for steps in space3.steps) == 18024

    def test_probabilities_are_exact_and_normalised(self, space3):
        for steps in space3.steps:
            for step in steps:
                total = sum(step.weights, Fraction(0))
                assert total == 1
                assert step.cum[-1] == pytest.approx(1.0)


class TestCompileUnit:
    def test_budget_exceeded_raises(self, setup3):
        starts = tuple(lr.canonical_states(3).values())
        with pytest.raises(StateBudgetExceeded):
            compile_space(
                setup3.automaton, starts, setup3.space_spec(), max_states=10
            )

    def test_markov_adversary_compiles(self, setup3, space3):
        by_name = dict(setup3.adversaries)
        starts = tuple(lr.canonical_states(3).values())
        table = compile_adversary(
            space3, by_name["fifo"], starts, max_nodes=200_000
        )
        assert table is not None
        assert len(table.start_nodes) == len(starts)

    def test_hashed_random_adversary_does_not_compile(self, setup3, space3):
        by_name = dict(setup3.adversaries)
        starts = tuple(lr.canonical_states(3).values())
        assert compile_adversary(
            space3, by_name["hashed-1"], starts, max_nodes=200_000
        ) is None

    def test_resolve_engine_name_rejects_unknown(self):
        with pytest.raises(VerificationError):
            resolve_engine_name("quantum")


class TestEngineSelection:
    def test_tree_requested_gives_tree(self, setup3, statement):
        engine = engine_for(setup3, statement, engine="tree")
        assert type(engine) is TreeEngine

    def test_compiled_requested_gives_compiled(self, setup3, statement):
        engine = engine_for(setup3, statement, engine="compiled")
        assert type(engine) is CompiledEngine

    def test_batched_requested_gives_batched(self, setup3, statement):
        engine = engine_for(setup3, statement, engine="batched")
        assert type(engine) is BatchedEngine

    def test_auto_prefers_batched(self, setup3, statement):
        engine = engine_for(setup3, statement, engine="auto")
        assert type(engine) is BatchedEngine

    def test_compiled_with_fuel_is_refused(self, setup3, statement):
        fuelled = GuardConfig(mode=WARN, fuel_steps=500).validate()
        with pytest.raises(VerificationError):
            engine_for(
                setup3, statement, engine="compiled", guards=fuelled
            )

    def test_batched_with_fuel_is_refused(self, setup3, statement):
        fuelled = GuardConfig(mode=WARN, fuel_steps=500).validate()
        with pytest.raises(VerificationError):
            engine_for(
                setup3, statement, engine="batched", guards=fuelled
            )

    def test_batched_with_tiny_budget_raises(self, setup3, statement):
        with pytest.raises(StateBudgetExceeded):
            engine_for(
                setup3, statement, engine="batched", state_budget=10
            )

    def test_auto_with_fuel_falls_back_to_tree(self, setup3, statement):
        fuelled = GuardConfig(mode=WARN, fuel_steps=500).validate()
        engine = engine_for(setup3, statement, engine="auto", guards=fuelled)
        assert type(engine) is TreeEngine

    def test_compiled_with_tiny_budget_raises(self, setup3, statement):
        with pytest.raises(StateBudgetExceeded):
            engine_for(
                setup3, statement, engine="compiled", state_budget=10
            )

    def test_auto_with_tiny_budget_falls_back_to_tree(self, setup3, statement):
        engine = engine_for(
            setup3, statement, engine="auto", state_budget=10
        )
        assert type(engine) is TreeEngine

    def test_identity_spec_blows_budget_on_timed_states(self, setup3, statement):
        # Without the untimed quotient the clock makes the space
        # unbounded; auto must notice and walk the tree instead.
        engine = build_engine(
            setup3.automaton,
            setup3.adversaries,
            tuple(lr.canonical_states(3).values()),
            statement.target.contains,
            lr.lr_time_of,
            statement.time_bound,
            200,
            engine="auto",
            state_budget=20_000,
            guards=OFF_CONFIG,
        )
        assert type(engine) is TreeEngine


class TestReportEquivalence:
    """API-level: the report object is identical whichever engine ran."""

    @pytest.mark.parametrize("seed", (0, 11))
    def test_check_reports_identical(self, setup3, statement, seed):
        reports = {
            engine: check_lr_statement(
                statement, setup3, seed=seed,
                samples_per_pair=SAMPLES, random_starts=2, engine=engine,
            )
            for engine in ENGINES
        }
        baseline = json.dumps(reports["tree"].to_dict(), sort_keys=True)
        for engine in ("compiled", "batched", "auto"):
            assert baseline == json.dumps(
                reports[engine].to_dict(), sort_keys=True
            ), f"engine {engine!r} diverged from tree at seed {seed}"


CLI_MATRIX = [
    (workers, guards)
    for workers in (1, 4)
    for guards in ("off", "warn", "strict")
]


class TestCliByteIdentity:
    """CLI-level: stdout bytes and exit status match across engines."""

    @pytest.mark.parametrize("workers,guards", CLI_MATRIX)
    def test_check_json_identical(self, capsys, workers, guards):
        if workers > 1 and not fork_available():
            pytest.skip("parallel backend needs the fork method")
        runs = {}
        for engine in ENGINES:
            code = main([
                "check", "--prop", "composed", "--n", "3",
                "--seed", "5", "--samples", str(SAMPLES),
                "--workers", str(workers), "--guards", guards,
                "--engine", engine, "--json",
            ])
            runs[engine] = (code, capsys.readouterr().out)
        assert (
            runs["tree"] == runs["compiled"] == runs["batched"] == runs["auto"]
        ), f"CLI output diverged at workers={workers} guards={guards}"

    def test_state_budget_exit_code(self, capsys):
        code = main([
            "check", "--prop", "composed", "--n", "3",
            "--seed", "5", "--samples", "4",
            "--engine", "compiled", "--state-budget", "10", "--json",
        ])
        capsys.readouterr()
        assert code == 2


class TestSpaceSpecQuotient:
    def test_quotient_keys_drop_time(self, setup3):
        spec = setup3.space_spec()
        state = next(iter(lr.canonical_states(3).values()))
        advanced = state.advanced(Fraction(7))
        assert spec.key(state) == spec.key(advanced)
        assert spec.time_of(advanced) - spec.time_of(state) == 7


def test_space_spec_requires_callables():
    spec = SpaceSpec(key=lambda s: s, time_of=lambda s: Fraction(0))
    assert spec.key("x") == "x"
