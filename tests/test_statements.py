"""Unit tests for arrow statements and state classes."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ProofError
from repro.proofs.statements import ArrowStatement, StateClass


def cls(name, predicate=None):
    return StateClass(name, predicate or (lambda s: False))


class TestStateClass:
    def test_name_and_atoms(self):
        a = cls("A")
        assert a.name == "A"
        assert a.atoms == frozenset({"A"})

    def test_empty_name_rejected(self):
        with pytest.raises(ProofError):
            StateClass("", lambda s: True)

    def test_pipe_in_name_rejected(self):
        with pytest.raises(ProofError):
            StateClass("A|B", lambda s: True)

    def test_union_name_sorted(self):
        union = cls("B") | cls("A")
        assert union.name == "A | B"

    def test_union_commutative(self):
        a, b = cls("A"), cls("B")
        assert (a | b) == (b | a)

    def test_union_associative(self):
        a, b, c = cls("A"), cls("B"), cls("C")
        assert ((a | b) | c) == (a | (b | c))

    def test_union_idempotent(self):
        a, b = cls("A"), cls("B")
        assert (a | b) | b == a | b

    def test_union_same_atom_same_predicate_ok(self):
        predicate = lambda s: s == 1
        a = StateClass("A", predicate)
        again = StateClass("A", predicate)
        assert (a | again).atoms == frozenset({"A"})

    def test_union_same_atom_different_predicate_rejected(self):
        a = StateClass("A", lambda s: True)
        other = StateClass("A", lambda s: False)
        with pytest.raises(ProofError):
            a | other

    def test_contains_disjunction(self):
        even = StateClass("Even", lambda s: s % 2 == 0)
        big = StateClass("Big", lambda s: s > 10)
        union = even | big
        assert union.contains(4)
        assert union.contains(11)
        assert not union.contains(3)
        assert union(12)

    def test_subset_by_atoms(self):
        a, b = cls("A"), cls("B")
        assert a.is_subset_by_atoms(a | b)
        assert not (a | b).is_subset_by_atoms(a)

    def test_hashable(self):
        a, b = cls("A"), cls("B")
        assert hash(a | b) == hash(b | a)


class TestArrowStatement:
    def source(self):
        return cls("U")

    def target(self):
        return cls("V")

    def test_components_normalised(self):
        statement = ArrowStatement(self.source(), self.target(), 5, 0.25, "S")
        assert statement.time_bound == Fraction(5)
        assert statement.probability == Fraction(1, 4)
        assert statement.schema_name == "S"

    def test_negative_time_rejected(self):
        with pytest.raises(ProofError):
            ArrowStatement(self.source(), self.target(), -1, 1, "S")

    def test_probability_range_enforced(self):
        with pytest.raises(ProofError):
            ArrowStatement(self.source(), self.target(), 1, 2, "S")
        with pytest.raises(ProofError):
            ArrowStatement(self.source(), self.target(), 1, -0.5, "S")

    def test_equality(self):
        a = ArrowStatement(self.source(), self.target(), 1, Fraction(1, 2), "S")
        b = ArrowStatement(cls("U"), cls("V"), 1, Fraction(1, 2), "S")
        assert a == b and hash(a) == hash(b)

    def test_inequality_on_schema(self):
        a = ArrowStatement(self.source(), self.target(), 1, 1, "S1")
        b = ArrowStatement(self.source(), self.target(), 1, 1, "S2")
        assert a != b

    def test_repr_reads_like_the_paper(self):
        statement = ArrowStatement(
            cls("T"), cls("C"), 13, Fraction(1, 8), "Unit-Time"
        )
        assert repr(statement) == "T --13-->_1/8 C  [Unit-Time]"
