"""Ben-Or randomized consensus under adversarial scheduling and crashes.

The third case study: the canonical randomized distributed algorithm,
modelled as a probabilistic automaton with an adversary-controlled
broadcast board and crash budget.  The script checks safety (agreement,
validity) along hostile runs, measures decision times, and validates a
hand-derived arrow statement in the paper's style.

Run:  python examples/benor_consensus.py
"""

from __future__ import annotations

import random

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import benor as bo
from repro.analysis.reporting import banner, format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event, sample_time_until


class CrashWorstPolicy(FifoRoundPolicy):
    """Spends the crash budget on the first reporter after time 1."""

    def next_move(self, automaton, fragment, pending, view):
        state = fragment.lstate
        if state.crashed_count() < 1 and state.time >= 1:
            for step in automaton.transitions(state):
                if step.action[0] == bo.CRASH:
                    return step
        return super().next_move(automaton, fragment, pending, view)


def main() -> None:
    print(banner("Ben-Or randomized binary consensus (n = 3, f = 1)"))

    statement = bo.benor_progress_statement(3)
    print(f"\nhand-derived progress statement: {statement!r}")
    print(f"retry-recursion expected-time bound: "
          f"{bo.benor_expected_time_bound(3)}")

    adversaries = [
        ("fifo", FifoRoundPolicy()),
        ("reversed", ReversedRoundPolicy()),
        ("hashed-9", HashedRandomRoundPolicy(9)),
        ("crash-worst", CrashWorstPolicy()),
    ]

    rows = []
    for inputs in [(0, 0, 0), (1, 1, 1), (0, 1, 0)]:
        automaton = bo.benor_automaton(inputs)
        view = bo.BenOrProcessView(3)
        start = ExecutionFragment.initial(bo.benor_initial_state(inputs))
        schema = ReachWithinTime(
            bo.some_decided, statement.time_bound, bo.benor_time_of
        )
        rng = random.Random(0)
        for name, policy in adversaries:
            adversary = RoundBasedAdversary(view, policy)
            wins, times = 0, []
            samples = 120
            for _ in range(samples):
                result = sample_event(
                    automaton, adversary, start, schema, rng, 3_000
                )
                wins += bool(result.verdict)
                for state in result.final.states:
                    assert bo.agreement_holds(state), "agreement violated!"
                    assert bo.validity_holds(state, inputs), "validity violated!"
            for _ in range(60):
                t = sample_time_until(
                    automaton, adversary, start, bo.some_decided,
                    bo.benor_time_of, rng, 5_000,
                )
                times.append(t)
            rows.append(
                (
                    str(inputs),
                    name,
                    f"{wins / samples:.3f}",
                    f"{float(sum(times) / len(times)):.2f}",
                    str(max(times)),
                )
            )
    print()
    print(format_table(
        (
            "inputs",
            "adversary",
            f"P[decide within {statement.time_bound}]",
            "mean time",
            "max time",
        ),
        rows,
    ))
    print(
        "\nAgreement and validity held at every sampled state, including "
        "under the crash-spending adversary; unanimous inputs decide in "
        "round one (validity forces the common input)."
    )


if __name__ == "__main__":
    main()
