"""Ben-Or randomized consensus through the model registry.

The consensus case study, exercised the way every case study now is:
the ``benor`` entry of :mod:`repro.models` supplies the automaton, the
round-based adversary family, the hand-derived progress statement, and
the retry-recursion expected-time bound, and the generic Monte-Carlo
runner checks the statement and measures decision times.  A final
algorithm-specific pass re-samples hostile runs and asserts the safety
properties (agreement, validity) that no generic harness can know
about.

Run:  python examples/benor_consensus.py
"""

from __future__ import annotations

import random

from repro.analysis.montecarlo import check_statement, measure_expected_time
from repro.analysis.reporting import banner, format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event
from repro.models import get_model


def main() -> None:
    model = get_model("benor")
    n = model.n_default
    print(banner(f"{model.title} through the model registry (n = {n})"))

    setup = model.build(n)
    statement = model.leaf_statements(n)[model.default_prop]
    print(f"\nhand-derived progress statement: {statement!r}")
    print(f"retry-recursion expected-time bound: "
          f"{model.expected_time_bound(n)}")

    report = check_statement(statement, setup, samples_per_pair=60)
    print(
        f"\n{model.default_prop} sampled min estimate "
        f"{report.min_estimate:.3f} (claimed >= "
        f"{float(statement.probability):.3f}), worst adversary "
        f"{report.worst.adversary_name}: "
        f"{'REFUTED' if report.refuted else 'supported'}"
    )

    times = measure_expected_time(setup, samples=40, max_steps=3_000)
    rows = [
        (name, f"{r.mean:.2f}", str(r.maximum), r.unreached)
        for name, r in sorted(times.items())
    ]
    print()
    print(format_table(
        ("adversary", "mean time", "max time", "unreached"), rows
    ))

    # Safety is algorithm-specific — no generic harness can state it —
    # so the last pass drops below the registry: replay hostile runs on
    # pivotal input vectors and assert agreement and validity directly.
    from repro.algorithms import benor as bo

    rng = random.Random(0)
    checked = 0
    for inputs in [(0, 0, 0), (1, 1, 1), (0, 1, 0)]:
        automaton = bo.benor_automaton(inputs)
        start = ExecutionFragment.initial(bo.benor_initial_state(inputs))
        schema = ReachWithinTime(
            bo.some_decided, statement.time_bound, bo.benor_time_of
        )
        for _name, adversary in model.build(n).adversaries:
            for _ in range(20):
                result = sample_event(
                    automaton, adversary, start, schema, rng, 3_000
                )
                for state in result.final.states:
                    assert bo.agreement_holds(state), "agreement violated!"
                    assert bo.validity_holds(state, inputs), \
                        "validity violated!"
                    checked += 1
    print(
        f"\nAgreement and validity held at every sampled state "
        f"({checked} states across split and unanimous inputs, under "
        f"every registered adversary)."
    )


if __name__ == "__main__":
    main()
