"""Quickstart: the proof method on a three-state automaton.

Builds a tiny probabilistic automaton, states two arrow statements
about it, checks them exactly against every adversary choice, and
composes them with Theorem 3.4 — the whole workflow of the paper in
miniature.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.adversary.deterministic import FirstEnabledAdversary
from repro.automaton.automaton import ExplicitAutomaton
from repro.automaton.signature import ActionSignature
from repro.automaton.transition import Transition
from repro.mdp.value_iteration import bounded_reachability
from repro.probability.space import FiniteDistribution
from repro.proofs.ledger import ProofLedger
from repro.proofs.statements import ArrowStatement, StateClass


def build_automaton() -> ExplicitAutomaton[str]:
    """A walk start -> middle -> goal with a retrying coin at each hop.

    From ``start`` a coin step reaches ``middle`` with probability 1/2
    (and stays otherwise); from ``middle`` a second coin reaches
    ``goal`` with probability 1/2.  The adversary's only freedom is
    which enabled step to fire — here each state enables exactly one,
    so every (non-halting) adversary behaves the same; the point of the
    example is the statement algebra.
    """
    signature = ActionSignature(internal=frozenset({"hop1", "hop2"}))
    steps = [
        Transition(
            "start", "hop1",
            FiniteDistribution.bernoulli("middle", "start"),
        ),
        Transition(
            "middle", "hop2",
            FiniteDistribution.bernoulli("goal", "middle"),
        ),
    ]
    return ExplicitAutomaton(
        states=["start", "middle", "goal"],
        start_states=["start"],
        signature=signature,
        steps=steps,
    )


def main() -> None:
    automaton = build_automaton()

    start = StateClass("Start", lambda s: s == "start")
    middle = StateClass("Middle", lambda s: s == "middle")
    goal = StateClass("Goal", lambda s: s == "goal")

    # Step-counted "time": each step costs one unit.  Two steps give two
    # independent coin chances, hence probability 3/4 per statement.
    first_leg = ArrowStatement(start, middle, 2, Fraction(3, 4), "all")
    second_leg = ArrowStatement(middle, goal, 2, Fraction(3, 4), "all")

    # Exact worst-case check by backward induction over the MDP.
    for statement, source_state in ((first_leg, "start"), (second_leg, "middle")):
        exact = bounded_reachability(
            automaton,
            statement.target.contains,
            source_state,
            steps=int(statement.time_bound),
            minimise=True,
        )
        print(f"{statement!r}: exact worst-case probability = {exact}")
        assert exact >= statement.probability

    # Compose with Theorem 3.4 inside a ledger (provenance included).
    ledger = ProofLedger("all", execution_closed=True)
    a = ledger.assume(first_leg, evidence="exact backward induction")
    b = ledger.assume(second_leg, evidence="exact backward induction")
    composed = ledger.compose(a, b)
    print("\nComposed statement:")
    print(ledger.explain(composed))

    exact = bounded_reachability(
        automaton, goal.contains, "start", steps=4, minimise=True
    )
    print(f"\nExact 4-step probability start -> goal: {exact}")
    print(f"Composed guarantee:                      {ledger.statement(composed).probability}")
    print("(the composed bound is sound but not tight, as expected)")

    # Sanity: a halting adversary would break everything, which is why
    # arrow statements are always relative to a schema that forces
    # progress; FirstEnabledAdversary is the canonical non-halting one.
    _ = FirstEnabledAdversary()


if __name__ == "__main__":
    main()
