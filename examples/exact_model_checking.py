"""Exact model checking of the paper's bounds, end to end.

A guided tour of the exact machinery (the strongest checks in this
reproduction): backward induction over every round-synchronous
Unit-Time strategy for (i) the five leaf arrows, (ii) a conditional
appendix lemma, (iii) the composed statement, and (iv) the exact
worst-case *expected* progress time — all on a ring of three.

Run:  python examples/exact_model_checking.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.algorithms import lehmann_rabin as lr
from repro.algorithms.lehmann_rabin import appendix as ap
from repro.analysis.reporting import banner, format_table
from repro.mdp.bounded import min_reach_probability_rounds
from repro.mdp.expected_time import extremal_expected_time_rounds


def strip(state):
    return state.untimed()


def main() -> None:
    n = 3
    automaton = lr.lehmann_rabin_automaton(n)
    view = lr.LRProcessView(n)
    rng = random.Random(0)

    print(banner("(i) Leaf arrows: exact minima over every strategy"))
    cases = [
        ("A.1  P --1-->_1 C", lr.P_CLASS, lr.in_critical, 1, Fraction(1)),
        (
            "A.14 F --2-->_1/2 G|P", lr.F_CLASS,
            lambda s: lr.in_good(s) or lr.in_pre_critical(s),
            2, Fraction(1, 2),
        ),
        ("A.11 G --5-->_1/4 P", lr.G_CLASS, lr.in_pre_critical, 5,
         Fraction(1, 4)),
    ]
    rows = []
    for name, region, target, rounds, bound in cases:
        starts = lr.sample_states_in(region, n, 5, rng)
        worst = min(
            min_reach_probability_rounds(
                automaton, view, target, s, rounds, strip
            )
            for s in starts
        )
        rows.append((name, str(bound), str(worst)))
        assert worst >= bound
    print(format_table(("claim", "paper bound", "exact worst min"), rows))

    print("\n" + banner("(ii) A conditional appendix lemma, exactly"))
    lemma = ap.lemma_a9(n)
    result = ap.check_conditional_lemma(lemma, n)
    print(
        f"{result.name}: {result.states_checked} hypothesis states, "
        f"max counterexample probability = {result.worst_value} "
        f"({'holds' if result.holds else 'FAILS'})"
    )

    print("\n" + banner("(iii) The composed statement, exactly"))
    start = lr.canonical_states(n)["all_flip"]
    worst = min_reach_probability_rounds(
        automaton, view, lr.in_critical, start, 13, strip
    )
    print(f"exact min P[T --13--> C] from {start!r}: {worst} (claim >= 1/8)")

    print("\n" + banner("(iv) Exact worst-case expected progress time"))
    for name in ("all_flip", "one_trying"):
        state = lr.canonical_states(n)[name]
        value = extremal_expected_time_rounds(
            automaton, view, lr.in_critical, state, strip, maximise=True
        )
        print(f"{name}: {value:.4f} (paper bound: 63)")


if __name__ == "__main__":
    main()
