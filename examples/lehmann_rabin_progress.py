"""Lehmann-Rabin end to end: proof chain, simulation, measured bounds.

Reconstructs the Section 6.2 derivation of ``T --13-->_{1/8} C``,
verifies each leaf statement by Monte-Carlo sampling under a family of
hostile Unit-Time adversaries, and measures time-to-critical against
the paper's expected-time bound of 63.

Run:  python examples/lehmann_rabin_progress.py [ring_size]
"""

from __future__ import annotations

import sys

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import (
    LRExperimentSetup,
    check_all_leaves,
    check_lr_statement,
    measure_lr_expected_time,
)
from repro.analysis.reporting import banner, format_table


def main(n: int = 3) -> None:
    print(banner(f"Lehmann-Rabin Dining Philosophers, ring size {n}"))

    chain = lr.lehmann_rabin_proof()
    print("\nDerivation of the composed time bound:")
    print(chain.ledger.explain(chain.final_id))
    print(f"\nExpected-time bound (Section 6.2 recursion): "
          f"{lr.expected_time_bound()}")

    setup = LRExperimentSetup.build(n)

    print("\n" + banner("Leaf statements (Monte-Carlo, hostile adversaries)"))
    reports = check_all_leaves(setup, samples_per_pair=80)
    rows = []
    for name, report in sorted(reports.items()):
        statement = report.statement
        rows.append(
            (
                f"Prop {name}",
                repr(statement),
                f"{report.min_estimate:.3f}",
                f"{float(statement.probability):.3f}",
                "REFUTED" if report.refuted else "ok",
            )
        )
    print(format_table(
        ("claim", "statement", "worst estimate", "claimed >=", "verdict"), rows
    ))

    print("\n" + banner("Composed statement T --13-->_1/8 C"))
    final_report = check_lr_statement(
        chain.final_statement, setup, samples_per_pair=80
    )
    print(final_report.summary_line())

    print("\n" + banner("Expected time to the critical region (bound: 63)"))
    time_reports = measure_lr_expected_time(setup, samples=80)
    rows = [
        (
            name,
            f"{report.mean:.2f}" if report.times else "n/a",
            str(report.maximum) if report.times else "n/a",
            report.unreached,
        )
        for name, report in sorted(time_reports.items())
    ]
    print(format_table(
        ("adversary", "mean time to C", "max time to C", "unreached"), rows
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
