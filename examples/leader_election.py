"""Method generality: arrow statements for randomized leader election.

Section 7 of the paper hopes the technique will be "used for the
analysis of other algorithms"; this example obliges.  Anonymous
candidates flip coins in rounds until one remains.  We state per-level
progress arrows, compose them with the same ledger machinery as the
Lehmann-Rabin proof, and validate the composed bound by simulation
under hostile Unit-Time adversaries.

Run:  python examples/leader_election.py [candidates]
"""

from __future__ import annotations

import random
import sys

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import election as el
from repro.analysis.reporting import banner, format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event, sample_time_until


def main(n: int = 4) -> None:
    print(banner(f"Randomized leader election, {n} candidates"))

    chain = el.election_proof(n)
    print("\nDerivation of the composed bound:")
    print(chain.ledger.explain(chain.final_id))
    print(f"\nExpected-time bound: {el.election_expected_time_bound(n)}")

    automaton = el.election_automaton(n)
    view = el.ElectionProcessView(n)
    adversaries = [
        ("fifo", RoundBasedAdversary(view, FifoRoundPolicy())),
        ("reversed", RoundBasedAdversary(view, ReversedRoundPolicy())),
        ("hashed-7", RoundBasedAdversary(view, HashedRandomRoundPolicy(7))),
    ]
    start = ExecutionFragment.initial(el.election_initial_state(n))
    final = chain.final_statement
    schema = ReachWithinTime(
        el.leader_elected, final.time_bound, el.election_time_of
    )

    rng = random.Random(0)
    rows = []
    for name, adversary in adversaries:
        wins = 0
        samples = 400
        for _ in range(samples):
            result = sample_event(
                automaton, adversary, start, schema, rng, max_steps=4000
            )
            wins += bool(result.verdict)
        times = []
        for _ in range(200):
            t = sample_time_until(
                automaton, adversary, start, el.leader_elected,
                el.election_time_of, rng, 4000,
            )
            times.append(t)
        rows.append(
            (
                name,
                f"{wins / samples:.3f}",
                f"{float(final.probability):.3f}",
                f"{float(sum(times) / len(times)):.2f}",
                str(max(times)),
            )
        )
    print("\n" + format_table(
        (
            "adversary",
            f"P[leader within {final.time_bound}]",
            "claimed >=",
            "mean time",
            "max time",
        ),
        rows,
    ))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
