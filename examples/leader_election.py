"""Method generality: leader election through the model registry.

Section 7 of the paper hopes the technique will be "used for the
analysis of other algorithms"; this example obliges — now entirely
through the pluggable model front-end.  The ``election`` registry
entry supplies the per-level arrow statements, the composed proof
chain (built with the same ledger machinery as the Lehmann-Rabin
proof), and the Unit-Time adversary family; the generic Monte-Carlo
runner validates the composed bound by simulation under hostile
adversaries.

Run:  python examples/leader_election.py [candidates]
"""

from __future__ import annotations

import sys

from repro.analysis.montecarlo import check_statement, measure_expected_time
from repro.analysis.reporting import banner, format_table
from repro.models import get_model


def main(n: int = 4) -> None:
    model = get_model("election")
    model.validate_n(n)
    print(banner(f"Randomized leader election, {n} candidates"))

    chain = model.proof_chain(n)
    print("\nDerivation of the composed bound:")
    print(chain.ledger.explain(chain.final_id))
    print(f"\nExpected-time bound: {model.expected_time_bound(n)}")

    setup = model.build(n)
    final = chain.final_statement
    report = check_statement(
        final, setup, samples_per_pair=80, max_steps=4_000
    )
    print(
        f"\nP[{final.source.name} -{final.time_bound}-> "
        f"{final.target.name}] sampled min {report.min_estimate:.3f} "
        f"(claimed >= {float(final.probability):.3f}): "
        f"{'REFUTED' if report.refuted else 'supported'}"
    )

    times = measure_expected_time(setup, samples=60, max_steps=4_000)
    rows = [
        (name, f"{r.mean:.2f}", str(r.maximum))
        for name, r in sorted(times.items())
    ]
    print("\n" + format_table(("adversary", "mean time", "max time"), rows))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
