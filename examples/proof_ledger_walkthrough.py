"""A guided tour of the proof calculus: rules, ledger, expected time.

Walks through the algebra of arrow statements step by step —
Proposition 3.2 (union), Theorem 3.4 (composition), the weakening
rules, the side conditions that make unsound combinations impossible —
and ends with the Section 6.2 expected-time recursion solved exactly.

Run:  python examples/proof_ledger_walkthrough.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import lehmann_rabin as lr
from repro.errors import ProofError
from repro.proofs.expected_time import RetryBranch, RetryRecursion
from repro.proofs.ledger import ProofLedger
from repro.proofs.rules import compose, union_rule, weaken
from repro.proofs.statements import ArrowStatement, StateClass


def main() -> None:
    # -- 1. State classes are named unions with predicates --------------
    g, p = lr.G_CLASS, lr.P_CLASS
    print(f"G | P == P | G: {(g | p) == (p | g)}")
    print(f"(G | P) | P == G | P: {((g | p) | p) == (g | p)}")

    # -- 2. The rules enforce their side conditions ----------------------
    a14 = lr.leaf_statements()["A.14"]   # F --2-->_1/2 G | P
    a11 = lr.leaf_statements()["A.11"]   # G --5-->_1/4 P
    try:
        compose(a14, a11)
    except ProofError as error:
        print(f"\ndirect composition correctly rejected: {error}")
    lifted = union_rule(a11, p)          # G | P --5-->_1/4 P
    composed = compose(a14, lifted)
    print(f"after Prop 3.2 lift: {composed!r}")

    weakened = weaken(composed, probability=Fraction(1, 10), time_bound=10)
    print(f"weakened for presentation: {weakened!r}")
    try:
        weaken(composed, probability=Fraction(1, 2))
    except ProofError as error:
        print(f"illegal strengthening rejected: {error}")

    # -- 3. The full Lehmann-Rabin ledger -------------------------------
    chain = lr.lehmann_rabin_proof()
    print("\nThe paper's full derivation, with provenance:")
    print(chain.ledger.explain(chain.final_id))
    leaves = chain.ledger.supporting_leaves(chain.final_id)
    print(f"\nThe result rests on {len(leaves)} leaf statements:")
    for leaf in leaves:
        derivation = chain.ledger.derivation(leaf)
        print(f"  [{leaf}] {derivation.statement!r} -- {derivation.evidence}")

    # -- 4. The expected-time recursion ----------------------------------
    recursion = lr.section_6_2_recursion()
    print(
        "\nSection 6.2 recursion "
        "V = 1/8*10 + 1/2*(5+V) + 3/8*(10+V):"
    )
    print(f"  E[V] = {recursion.solve()}  (the paper's 60)")
    print(f"  total expected-time bound: {lr.expected_time_bound()}  "
          "(2 + 60 + 1 = 63)")

    # The same machinery solves any retry structure:
    custom = RetryRecursion(
        [
            RetryBranch.of(Fraction(1, 3), 4, retries=False),
            RetryBranch.of(Fraction(2, 3), 2, retries=True),
        ]
    )
    print(f"\na custom recursion solves to {custom.solve()}")

    # -- 5. Ledgers refuse cross-schema reasoning ------------------------
    other = ProofLedger("Oblivious", execution_closed=True)
    try:
        other.assume(a14, evidence="wrong schema")
    except ProofError as error:
        print(f"\ncross-schema assumption rejected: {error}")


if __name__ == "__main__":
    main()
