"""Randomized vs deterministic philosophers under hostile scheduling.

The paper motivates randomization by the impossibility of symmetric
deterministic solutions; the standard deterministic escape hatch breaks
symmetry with a global resource order instead.  This example runs both
algorithms under the same Unit-Time adversaries and compares worst-case
time to the critical region as the ring grows: Lehmann-Rabin's constant
expected bound versus the baseline's (still bounded, but order-imposed)
behaviour.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms import ordered as od
from repro.algorithms.ordered.automaton import OPC, OrderedState
from repro.analysis.reporting import banner, format_table
from repro.automaton.execution import ExecutionFragment
from repro.execution.sampler import sample_time_until


def lr_start(n: int):
    """All philosophers ready to flip: full contention."""
    return lr.canonical_states(n)["all_flip"]


def ordered_start(n: int) -> OrderedState:
    """All philosophers waiting for their first resource."""
    return OrderedState(tuple([OPC.W1] * n), tuple([False] * n), Fraction(0))


def measure(automaton, view, start, target, time_of, samples, rng):
    """Worst observed mean/max time across three adversaries."""
    adversaries = [
        RoundBasedAdversary(view, FifoRoundPolicy()),
        RoundBasedAdversary(view, ReversedRoundPolicy()),
        RoundBasedAdversary(view, HashedRandomRoundPolicy(11)),
    ]
    worst_mean, worst_max = 0.0, Fraction(0)
    for adversary in adversaries:
        times = []
        for _ in range(samples):
            t = sample_time_until(
                automaton,
                adversary,
                ExecutionFragment.initial(start),
                target,
                time_of,
                rng,
                max_steps=20_000,
            )
            assert t is not None, "progress must occur under Unit-Time"
            times.append(t)
        worst_mean = max(worst_mean, float(sum(times) / len(times)))
        worst_max = max(worst_max, max(times))
    return worst_mean, worst_max


def main() -> None:
    print(banner("Time to first critical entry: Lehmann-Rabin vs ordered"))
    rng = random.Random(0)
    rows = []
    for n in (3, 4, 5, 6):
        lr_mean, lr_max = measure(
            lr.lehmann_rabin_automaton(n),
            lr.LRProcessView(n),
            lr_start(n),
            lr.in_critical,
            lr.lr_time_of,
            samples=60,
            rng=rng,
        )
        od_mean, od_max = measure(
            od.ordered_automaton(n),
            od.OrderedProcessView(n),
            ordered_start(n),
            od.ordered_in_critical,
            od.ordered_time_of,
            samples=60,
            rng=rng,
        )
        rows.append(
            (
                n,
                f"{lr_mean:.2f}",
                str(lr_max),
                f"{od_mean:.2f}",
                str(od_max),
            )
        )
    print(format_table(
        (
            "ring size",
            "LR mean",
            "LR max",
            "ordered mean",
            "ordered max",
        ),
        rows,
    ))
    print(
        "\nBoth are bounded; Lehmann-Rabin pays a small randomized "
        "constant (paper bound: expected <= 63) without needing any "
        "symmetry-breaking assumption."
    )


if __name__ == "__main__":
    main()
