"""Example 4.1: how an adversary breaks naive independence reasoning.

Two processes each flip a fair coin.  "P yields heads and Q yields
tails" sounds like probability 1/4 — but a scheduler that peeks at P's
outcome before deciding whether to let Q flip can drive the
*conditional* probability (given both flipped) to 1/2 or to 0.

The paper's repair is the ``first(a, U)`` event schema, which counts
executions where the action never occurs as successes; Proposition 4.2
then guarantees ``P[first(flip_p, H) AND first(flip_q, T)] >= 1/4``
under *every* adversary.  This script computes all of these quantities
exactly on the execution trees.

Run:  python examples/adversarial_independence.py
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.coins import (
    both_flip_adversary,
    never_flip_q_adversary,
    peek_adversary,
    p_heads,
    q_tails,
    two_coin_automaton,
    HEADS,
    TAILS,
    FLIP_P,
    FLIP_Q,
)
from repro.analysis.reporting import format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.combinators import Intersection
from repro.events.first import FirstOccurrence
from repro.events.independence import proposition_4_2_claims
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import exact_event_probability


def main() -> None:
    automaton = two_coin_automaton()
    start = ExecutionFragment.initial((None, None))

    event = Intersection(
        [FirstOccurrence(FLIP_P, p_heads), FirstOccurrence(FLIP_Q, q_tails)]
    )

    adversaries = [
        ("both-flip", both_flip_adversary()),
        ("peek: Q only if P=H", peek_adversary(HEADS)),
        ("peek: Q only if P=T", peek_adversary(TAILS)),
        ("never flip Q", never_flip_q_adversary()),
    ]

    rows = []
    for name, adversary in adversaries:
        tree = ExecutionAutomaton(automaton, adversary, start)
        probability = exact_event_probability(tree, event, max_steps=4)

        # The naive conditional reading: among executions where both
        # coins were flipped, how often is the pattern (H, T)?
        both = exact_event_probability(
            tree,
            Intersection(
                [
                    FirstOccurrence(FLIP_P, lambda s: True),
                    FirstOccurrence(FLIP_Q, lambda s: True),
                ]
            ),
            max_steps=4,
        )
        # first(a, True) accepts vacuously; subtract the never-flipped
        # mass by evaluating "action occurs" = complement of vacuity.
        # For this tiny model it is easier to evaluate directly:
        pattern_and_both = exact_event_probability(
            tree,
            Intersection(
                [
                    FirstOccurrence(FLIP_P, p_heads),
                    FirstOccurrence(FLIP_Q, q_tails),
                    _occurs(FLIP_P),
                    _occurs(FLIP_Q),
                ]
            ),
            max_steps=4,
        )
        both_flipped = exact_event_probability(
            tree,
            Intersection([_occurs(FLIP_P), _occurs(FLIP_Q)]),
            max_steps=4,
        )
        conditional = (
            pattern_and_both / both_flipped if both_flipped else None
        )
        rows.append(
            (
                name,
                str(probability),
                str(both_flipped),
                str(conditional) if conditional is not None else "undefined",
            )
        )

    print(format_table(
        (
            "adversary",
            "P[first_p(H) & first_q(T)]",
            "P[both flipped]",
            "P[H,T | both flipped]",
        ),
        rows,
    ))

    first_claim, next_claim = proposition_4_2_claims(
        automaton,
        [(FLIP_P, p_heads), (FLIP_Q, q_tails)],
        automaton.states,
    )
    print(
        f"\nProposition 4.2 bounds: conjunction >= {first_claim.lower_bound}"
        f", next >= {next_claim.lower_bound}"
    )
    print(
        "Note how the event-schema probability never drops below 1/4 "
        "even though the conditional swings between 0 and 1/2."
    )
    assert all(Fraction(row[1]) >= first_claim.lower_bound for row in rows)


def _occurs(action):
    """The event "``action`` occurs at some point"."""
    from repro.events.combinators import Complement
    from repro.events.first import FirstOccurrence

    # first(a, emptyset) holds iff a never occurs; its complement is
    # "a occurs".
    return Complement(FirstOccurrence(action, lambda s: False))


if __name__ == "__main__":
    main()
