"""Speedup and byte-identity of the batched flat-array engine.

Two claims about ``--engine batched`` (``docs/statespace.md``):

* **Equivalence** — the composed ``T --13--> C`` check produces a
  byte-identical report under the compiled and batched engines (both
  numpy and forced-pure block fillers).
* **Speedup** — on the n=3 ring, the batched walker's raw sampling
  loop (CSR arrays, chain compression, scaled-integer time, block
  uniforms) completes at least 5x faster than the stepwise compiled
  walker it mirrors, on top of the compiled engine's own speedup over
  the tree walk measured in ``bench_statespace.py``.  The numpy block
  filler is required for the asserted ratio; the bench skips cleanly
  when numpy is absent, when the compile blows its state budget, or
  when the compiled baseline finishes too fast to time reliably
  (this container has 1 CPU).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_lr_statement
from repro.errors import StateBudgetExceeded
from repro.parallel.seeds import rng_from_seed
from repro.statespace import BatchedEngine, build_engine
from repro.statespace import np_backend

SAMPLES = 60
#: Raw sampling-loop iterations for the timed ratio.
LOOP_SAMPLES = 40_000


def build_pair_engines():
    """(compiled, batched) engines for the composed statement, n=3.

    Markov-only family: the coin-peeking hashed-random adversaries
    would sample through the tree walk on both sides and dilute the
    measured ratio with identical work.
    """
    setup = LRExperimentSetup.build(3, random_seeds=())
    statement = lr.lehmann_rabin_proof().final_statement
    starts = tuple(
        state
        for state in lr.canonical_states(3).values()
        if statement.source.contains(state)
    )

    def build(engine):
        return build_engine(
            setup.automaton,
            setup.adversaries,
            starts,
            statement.target.contains,
            lr.lr_time_of,
            statement.time_bound,
            400,
            engine=engine,
            spec=setup.space_spec(),
        )

    return build("compiled"), build("batched")


def test_batched_report_matches_compiled(setup3):
    statement = lr.lehmann_rabin_proof().final_statement

    def run(engine):
        return check_lr_statement(
            statement, setup3, seed=0, samples_per_pair=SAMPLES,
            random_starts=4, engine=engine,
        )

    try:
        compiled = run("compiled")
        batched = run("batched")
    except StateBudgetExceeded as error:
        pytest.skip(f"compile budget exceeded: {error}")
    assert json.dumps(compiled.to_dict(), sort_keys=True) == json.dumps(
        batched.to_dict(), sort_keys=True
    )


def test_batched_sampling_at_least_5x_faster():
    if not np_backend.available():
        pytest.skip("numpy not installed — the 5x claim is for the "
                    "numpy block filler")
    try:
        compiled, batched = build_pair_engines()
    except StateBudgetExceeded as error:
        pytest.skip(f"compile budget exceeded: {error}")
    assert isinstance(batched, BatchedEngine)

    def drive(engine, seed):
        rng = rng_from_seed(seed)
        started = time.perf_counter()
        stream = [
            (result.verdict, result.steps)
            for result in (
                engine.sample(0, 0, rng) for _ in range(LOOP_SAMPLES)
            )
        ]
        return time.perf_counter() - started, stream

    drive(compiled, 0)  # warm both walkers before timing
    drive(batched, 0)
    compiled_seconds, compiled_stream = drive(compiled, 1)
    if compiled_seconds < 0.5:
        pytest.skip(
            f"compiled baseline finished in {compiled_seconds:.3f}s — "
            "too fast to time a 5x ratio reliably on this hardware"
        )
    batched_seconds, batched_stream = drive(batched, 1)

    assert compiled_stream == batched_stream, (
        "batched sampling diverged from the compiled walker"
    )
    speedup = compiled_seconds / batched_seconds
    print(
        f"\ncompiled: {compiled_seconds:.2f}s, batched: "
        f"{batched_seconds:.2f}s ({speedup:.2f}x over "
        f"{LOOP_SAMPLES} samples)"
    )
    assert speedup >= 5.0, (
        f"batched speedup {speedup:.2f}x below the required 5x"
    )
