"""E15: sequential vs fixed-sample statistical verification.

An efficiency ablation of the verification harness itself: Wald's SPRT
(`repro.probability.sequential`) decides "does ``T --13-->_1/8 C`` hold
with margin under this adversary?" using a data-dependent number of
runs, where the fixed-sample verifier always pays its full budget.
Because the paper's bound is loose (measured ≈ 0.97 vs claimed 0.125),
the sequential test terminates after a handful of samples — which is
why SMC tools use it.
"""

from __future__ import annotations

import random

from repro.adversary.unit_time import FifoRoundPolicy, RoundBasedAdversary
from repro.algorithms import lehmann_rabin as lr
from repro.analysis.reporting import format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event
from repro.probability.sequential import SprtVerdict, sprt_for_claim


def make_sampler(rng):
    automaton = lr.lehmann_rabin_automaton(3)
    adversary = RoundBasedAdversary(lr.LRProcessView(3), FifoRoundPolicy())
    start = lr.canonical_states(3)["all_flip"]
    schema = ReachWithinTime(lr.in_critical, 13, lr.lr_time_of)

    def sample() -> bool:
        result = sample_event(
            automaton, adversary, ExecutionFragment.initial(start),
            schema, rng, 1_000,
        )
        return bool(result.verdict)

    return sample


def test_sequential_verification(benchmark):
    rng = random.Random(0)
    sample = make_sampler(rng)
    test = sprt_for_claim(0.125, margin=0.3, alpha=0.001, beta=0.01)

    def run():
        return test.run(sample, max_samples=5_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    print(
        f"\nSPRT verdict: {result.verdict.value} after "
        f"{result.samples_used} samples "
        f"({result.successes} successes)"
    )
    assert result.verdict is SprtVerdict.ACCEPT_H1
    assert result.samples_used <= 200


def test_fixed_sample_baseline(benchmark):
    """The fixed-budget equivalent, for the wall-clock comparison."""
    rng = random.Random(1)
    sample = make_sampler(rng)

    def run():
        return sum(sample() for _ in range(200))

    successes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert successes / 200 >= 0.125


def test_sample_efficiency_table():
    """How many samples the SPRT needs at different claim margins."""
    rng = random.Random(2)
    sample = make_sampler(rng)
    rows = []
    for margin in (0.1, 0.3, 0.6):
        test = sprt_for_claim(0.125, margin=margin)
        result = test.run(sample, max_samples=5_000)
        rows.append(
            (margin, result.verdict.value, result.samples_used)
        )
        assert result.verdict is SprtVerdict.ACCEPT_H1
    print()
    print(format_table(("margin", "verdict", "samples used"), rows))
