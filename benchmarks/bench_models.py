"""Registry-dispatch overhead of the pluggable model front-end.

The ``--model`` front-end replaced hard-wired ``LRExperimentSetup``
calls with a name lookup (:func:`repro.models.get_model`) plus a
``Model.build`` indirection.  The claim: building the standard
ring-of-3 setup through the registry costs **under 5%** more
wall-clock than calling ``LRExperimentSetup.build`` directly — the
lookup is one dict read and the indirection one extra frame, so the
dispatch must be invisible next to automaton/adversary construction.
A correctness rider pins that both paths produce byte-identical
check reports, so the dispatch cannot be cheap by doing less.
"""

from __future__ import annotations

import time

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_statement
from repro.corpus.runner import report_digest
from repro.models import get_model

#: Builds per timed sample: enough to dwarf timer resolution.
BUILDS = 150


def best_of(fn, repeats=5):
    """The fastest of ``repeats`` timed runs, in seconds."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def build_direct():
    for _ in range(BUILDS):
        LRExperimentSetup.build(3)


def build_through_registry():
    for _ in range(BUILDS):
        get_model("lr").build(3)


class TestRegistryDispatchOverhead:
    def test_build_overhead_under_5_percent(self):
        # Warm both paths (imports, memoised schema pieces) before
        # timing, then compare best-of-5 minima — the stable floor.
        build_direct()
        build_through_registry()
        direct = best_of(build_direct)
        registry = best_of(build_through_registry)
        assert registry <= direct * 1.05, (
            f"registry dispatch cost {registry / direct - 1:+.1%} "
            f"over direct build (claimed < 5%)"
        )

    def test_both_paths_produce_identical_reports(self):
        statement = lr.leaf_statements()["A.14"]
        reports = []
        for setup in (
            LRExperimentSetup.build(3),
            get_model("lr").build(3),
        ):
            report = check_statement(
                statement, setup, samples_per_pair=10, random_starts=2,
                max_steps=120,
            )
            reports.append(report_digest(report.to_dict()))
        assert reports[0] == reports[1]
