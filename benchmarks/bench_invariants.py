"""E9: Lemma 6.1 and mutual exclusion along adversarial executions.

The safety side of the paper.  The bench measures the throughput of the
invariant checkers over a long sampled execution (they are in every
analysis hot loop) while asserting that no state ever violates
Lemma 6.1 or mutual exclusion.
"""

from __future__ import annotations

import random

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import RoundBasedAdversary
from repro.algorithms import lehmann_rabin as lr
from repro.automaton.execution import ExecutionFragment


def long_walk(n: int, steps: int, seed: int):
    automaton = lr.lehmann_rabin_automaton(n)
    adversary = RoundBasedAdversary(
        lr.LRProcessView(n), HashedRandomRoundPolicy(seed)
    )
    rng = random.Random(seed)
    fragment = ExecutionFragment.initial(lr.canonical_states(n)["all_flip"])
    states = [fragment.lstate]
    for _ in range(steps):
        step = adversary.checked_choose(automaton, fragment)
        fragment = fragment.extend(step.action, step.target.sample(rng))
        states.append(fragment.lstate)
    return states


def test_lemma_6_1_along_execution(benchmark):
    states = long_walk(5, 400, seed=0)

    def check():
        return all(lr.lemma_6_1_holds(s) for s in states)

    assert benchmark(check)


def test_mutual_exclusion_along_execution(benchmark):
    states = long_walk(5, 400, seed=1)

    def check():
        return all(lr.mutual_exclusion_holds(s) for s in states)

    assert benchmark(check)


def test_simulation_throughput(benchmark):
    """Steps-per-second of the full adversarial simulation stack."""
    result = benchmark.pedantic(
        long_walk, args=(4, 300, 2), rounds=3, iterations=1
    )
    assert len(result) == 301
    assert all(lr.lemma_6_1_holds(s) for s in result)
