"""E12: exact worst-case probabilities over round-synchronous adversaries.

Backward induction over *every* scheduling choice of the
round-synchronous Unit-Time subclass — the strongest check this
reproduction performs.  For each leaf proposition and for the composed
statement, the exact minimum over the subclass must dominate the
paper's bound (and since the subclass is part of Unit-Time, falling
below the bound would be a genuine counterexample to the paper).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.reporting import format_table
from repro.mdp.bounded import min_reach_probability_rounds


def strip(state):
    return state.untimed()


def exact_min_over(setup, region, target, rounds, count, seed):
    starts = lr.sample_states_in(region, setup.n, count, random.Random(seed))
    values = [
        min_reach_probability_rounds(
            setup.automaton, setup.view, target, start, rounds, strip
        )
        for start in starts
    ]
    worst = min(range(len(values)), key=lambda i: values[i])
    return values[worst], starts[worst]


CASES = [
    ("A.1", lr.P_CLASS, lr.in_critical, 1, Fraction(1)),
    (
        "A.3",
        lr.T_CLASS,
        lambda s: lr.in_reduced_trying(s) or lr.in_critical(s),
        2,
        Fraction(1),
    ),
    (
        "A.15",
        lr.RT_CLASS,
        lambda s: lr.in_flip_ready(s) or lr.in_good(s) or lr.in_pre_critical(s),
        3,
        Fraction(1),
    ),
    (
        "A.14",
        lr.F_CLASS,
        lambda s: lr.in_good(s) or lr.in_pre_critical(s),
        2,
        Fraction(1, 2),
    ),
    ("A.11", lr.G_CLASS, lr.in_pre_critical, 5, Fraction(1, 4)),
]


@pytest.mark.parametrize(
    "name,region,target,rounds,bound",
    CASES,
    ids=[f"exact_{case[0]}" for case in CASES],
)
def test_exact_leaf_bounds_n3(benchmark, setup3, name, region, target,
                              rounds, bound):
    value, witness = benchmark.pedantic(
        exact_min_over,
        args=(setup3, region, target, rounds, 8, hash(name) % 1000),
        rounds=1,
        iterations=1,
    )
    print(f"\nexact min for {name}: {value} (claimed >= {bound}) "
          f"worst start {witness!r}")
    assert value >= bound


def test_exact_composed_bound_n3(benchmark, setup3):
    """T --13-->_1/8 C, exact over the subclass, sampled T states."""
    value, witness = benchmark.pedantic(
        exact_min_over,
        args=(setup3, lr.T_CLASS, lr.in_critical, 13, 6, 99),
        rounds=1,
        iterations=1,
    )
    print(f"\nexact min for composed statement: {value} "
          f"(claimed >= 1/8) worst start {witness!r}")
    assert value >= Fraction(1, 8)


def test_exact_A14_n4(benchmark, setup4):
    """The F arrow exactly on a ring of four."""
    target = lambda s: lr.in_good(s) or lr.in_pre_critical(s)
    value, witness = benchmark.pedantic(
        exact_min_over,
        args=(setup4, lr.F_CLASS, target, 2, 4, 7),
        rounds=1,
        iterations=1,
    )
    print(f"\nexact min for A.14 on n=4: {value} (claimed >= 1/2)")
    assert value >= Fraction(1, 2)


def test_exact_A11_n4(benchmark, setup4):
    """The G arrow exactly on a ring of four."""
    value, witness = benchmark.pedantic(
        exact_min_over,
        args=(setup4, lr.G_CLASS, lr.in_pre_critical, 5, 3, 11),
        rounds=1,
        iterations=1,
    )
    print(f"\nexact min for A.11 on n=4: {value} (claimed >= 1/4)")
    assert value >= Fraction(1, 4)


def test_exact_values_table(setup3):
    """A summary table of the exact minima (no timing)."""
    rows = []
    for name, region, target, rounds, bound in CASES:
        value, _ = exact_min_over(setup3, region, target, rounds, 6, 3)
        rows.append((name, str(rounds), str(bound), str(value)))
    print()
    print(
        format_table(
            ("proposition", "rounds", "paper bound", "exact worst min"),
            rows,
        )
    )
