"""E14: towards the paper's open problem — lower bounds on progress time.

Section 7: "it would be very satisfying to derive a non trivial lower
bound on the time for progress, which should be lower than our upper
bound".  The exact machinery gives empirical lower bounds for the
round-synchronous subclass on small rings:

* the *worst-case expected* progress time actually achievable by a
  scheduler (max over sampled ``T`` start states of the exact optimum) —
  any correct expected-time upper bound for Unit-Time must be at least
  this;
* the probability-vs-deadline profile: the exact minimum of
  ``P[T --t--> C]`` as ``t`` shrinks, locating where the paper's
  ``>= 1/8`` actually starts holding.

These are lower bounds on the *worst case over the subclass*; richer
Unit-Time adversaries could only push them higher, so they bracket the
paper's constants from below while the upper-bound experiments bracket
them from above.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.reporting import format_table
from repro.mdp.bounded import min_reach_probability_rounds
from repro.mdp.expected_time import extremal_expected_time_rounds


def strip(state):
    return state.untimed()


def test_expected_time_lower_bound(benchmark, setup3):
    """The hardest sampled T state for the optimal spoiler (n = 3)."""
    rng = random.Random(0)
    starts = lr.sample_states_in(lr.T_CLASS, 3, 5, rng)
    starts += [lr.canonical_states(3)["one_trying"]]

    def run():
        worst_value, worst_state = 0.0, None
        for start in starts:
            value = extremal_expected_time_rounds(
                setup3.automaton, setup3.view, lr.in_critical, start,
                strip, maximise=True, tolerance=1e-7,
            )
            if value > worst_value:
                worst_value, worst_state = value, start
        return worst_value, worst_state

    worst_value, worst_state = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nempirical lower bound on the worst-case expected progress "
        f"time (n=3, round-synchronous): {worst_value:.4f} "
        f"attained at {worst_state!r}"
    )
    # Sandwich: a genuine scheduler forces at least this, and the
    # paper's 63 caps it.
    assert 0 < worst_value <= 63.0


def test_probability_deadline_profile(benchmark, setup3):
    """Exact min P[T --t--> C] for small t: where 1/8 starts to hold."""
    rng = random.Random(1)
    starts = lr.sample_states_in(lr.T_CLASS, 3, 5, rng)

    def run():
        profile = []
        for rounds in (0, 1, 2, 3, 4, 5):
            worst = min(
                min_reach_probability_rounds(
                    setup3.automaton, setup3.view, lr.in_critical, start,
                    rounds, strip,
                )
                for start in starts
            )
            profile.append((rounds, worst))
        return profile

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("deadline (rounds)", "exact min P[T -t-> C]"),
            [(t, str(p)) for t, p in profile],
        )
    )
    values = dict(profile)
    assert values[0] == 0  # nobody starts critical in these samples
    # Monotone in the deadline.
    ordered = [p for _, p in profile]
    assert ordered == sorted(ordered)
    # The paper's 1/8 already holds well before its deadline 13 on this
    # ring -- the bound's slack, quantified exactly.
    assert values[5] >= Fraction(1, 8)
