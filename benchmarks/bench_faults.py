"""Overhead and equivalence of the fault-tolerant pool runtime.

Two claims about the hardened runtime (``docs/robustness.md``):

* **Zero-cost when healthy** — the fault-tolerance machinery (policy
  validation, retry bookkeeping, integrity digests on the inline path)
  adds less than 5% to a standard sequential check relative to calling
  the sampling loop without any policy at all.
* **Equivalence under chaos** — a run with a 10% injected worker-crash
  rate (plus a retry budget to absorb it) completes and produces
  estimates byte-identical to the undisturbed sequential run.

The workload is the A.14 leaf statement on the standard ring of 3 —
small enough to repeat for stable timing, large enough that per-pair
sampling dominates.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement
from repro.parallel import FaultPlan, RunPolicy, fork_available

SAMPLES = 40
RANDOM_STARTS = 2
REPEATS = 15

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="the pooled paths need the fork method"
)


def run_check(setup3, workers=1, policy=None):
    statement = lr.leaf_statements()["A.14"]
    return check_lr_statement(
        statement, setup3, seed=0, samples_per_pair=SAMPLES,
        random_starts=RANDOM_STARTS, workers=workers, policy=policy,
    )


def timed(call):
    started = time.perf_counter()
    call()
    return time.perf_counter() - started


def test_no_fault_path_overhead_under_5_percent(setup3):
    """A policy carrying retries/timeout must cost nothing when unused."""
    policy = RunPolicy(timeout=300.0, retries=3)
    run_check(setup3)  # warm caches before timing
    run_check(setup3, policy=policy)

    # Interleave the two variants and take each side's minimum, so
    # machine-load drift during the benchmark hits both equally.
    bare = float("inf")
    hardened = float("inf")
    for _ in range(REPEATS):
        bare = min(bare, timed(lambda: run_check(setup3, policy=None)))
        hardened = min(
            hardened, timed(lambda: run_check(setup3, policy=policy))
        )

    overhead = hardened / bare - 1.0
    print(
        f"\nbare: {bare * 1e3:.1f}ms, hardened: {hardened * 1e3:.1f}ms "
        f"({overhead * 100:+.1f}%)"
    )
    assert overhead < 0.05, (
        f"healthy-path overhead {overhead * 100:.1f}% exceeds the 5% budget"
    )


@needs_fork
def test_ten_percent_crash_rate_estimates_identical(setup3):
    """A chaos run must finish and not move a single estimate."""
    baseline = run_check(setup3, workers=1)
    policy = RunPolicy(
        retries=8, backoff=0.01, faults=FaultPlan(crash=0.10, seed=7)
    )
    chaotic = run_check(setup3, workers=2, policy=policy)
    assert json.dumps(chaotic.to_dict(), sort_keys=True) == json.dumps(
        baseline.to_dict(), sort_keys=True
    )
