"""Instrumentation overhead on the Monte-Carlo arrow-check hot path.

Two claims, both measured on the A.14 leaf check from the standard
ring-of-3 setup:

* With the default no-op registry, the instrumentation the hot paths
  retain (module-level helper calls that check ``enabled`` and return)
  costs **under 5%** of the check's wall-clock.  Measured directly: the
  check is timed, every helper invocation during an identical run is
  counted, the per-invocation cost of each no-op helper is timed in a
  tight loop, and the product is compared against the check time.
* With a recording registry installed, the same check still completes
  within a small factor of the no-op time (recording is meant for
  diagnosis runs, not to be free — but it must stay usable).

The same 5% bound covers the disabled paths of the other two
observability pillars: the progress hooks the pool calls when no
``--progress`` reporter is installed, and the manifest write the CLI
skips under ``--no-manifest`` (or for meta-commands).
"""

from __future__ import annotations

import argparse
import time

import pytest

from repro import obs
from repro.obs import progress
from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement

SAMPLES = 40


def run_check(setup):
    statement = lr.leaf_statements()["A.14"]
    return check_lr_statement(
        statement, setup, samples_per_pair=SAMPLES, random_starts=2,
        max_steps=200,
    )


def best_of(fn, repeats=3):
    """The fastest of ``repeats`` timed runs, in seconds."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def per_call_cost(fn, calls=100_000):
    """Mean per-invocation cost of ``fn`` over a tight loop, in seconds."""
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls


def count_helper_invocations(setup):
    """How many obs helper calls one arrow check makes when disabled.

    Wraps the module-level helpers with counting pass-throughs; every
    instrumented call site reaches them through the ``obs`` module
    attribute, so the counts are exact.
    """
    counts = {"incr": 0, "enabled": 0, "span": 0, "gauge": 0, "observe": 0}
    with pytest.MonkeyPatch.context() as patcher:
        for name in counts:
            original = getattr(obs, name)

            def wrapper(*args, _original=original, _name=name, **kwargs):
                counts[_name] += 1
                return _original(*args, **kwargs)

            patcher.setattr(obs, name, wrapper)
        run_check(setup)
    return counts


def test_noop_overhead_under_5_percent(setup3):
    assert not obs.enabled(), "bench requires the default no-op registry"
    run_check(setup3)  # warm caches before timing
    check_seconds = best_of(lambda: run_check(setup3))

    counts = count_helper_invocations(setup3)
    costs = {
        "incr": per_call_cost(lambda: obs.incr("bench.noop")),
        "enabled": per_call_cost(obs.enabled),
        "gauge": per_call_cost(lambda: obs.gauge("bench.noop", 1)),
        "observe": per_call_cost(lambda: obs.observe("bench.noop", 1.0)),
    }

    def span_call():
        with obs.span("bench.noop"):
            pass

    costs["span"] = per_call_cost(span_call, calls=20_000)

    overhead_seconds = sum(
        counts[name] * costs[name] for name in counts
    )
    ratio = overhead_seconds / check_seconds
    print(
        f"\narrow check: {check_seconds * 1000:.1f}ms; "
        f"helper calls: {counts}; "
        f"estimated no-op overhead: {overhead_seconds * 1e6:.0f}us "
        f"({ratio * 100:.2f}%)"
    )
    assert counts["incr"] > 0, "hot path lost its instrumentation"
    assert ratio < 0.05, (
        f"no-op instrumentation overhead {ratio * 100:.2f}% exceeds 5%"
    )


def test_disabled_progress_hooks_under_5_percent(setup3):
    """Without a reporter, the pool's progress hooks must cost nothing.

    The hooks fire once per pooled task.  Bound the worst plausible
    density — one hook pair per arrow check, i.e. a run whose every
    task is a single check — well under the 5% budget.
    """
    assert progress.active() is None, "bench requires no active reporter"
    run_check(setup3)  # warm caches before timing
    check_seconds = best_of(lambda: run_check(setup3))

    per_task_cost = (
        per_call_cost(lambda: progress.add_total(0))
        + per_call_cost(progress.task_done)
        + per_call_cost(progress.task_retried)
        + per_call_cost(progress.pool_degraded)
    )
    ratio = per_task_cost / check_seconds
    print(
        f"\narrow check: {check_seconds * 1000:.1f}ms; disabled progress "
        f"hooks: {per_task_cost * 1e9:.0f}ns/task ({ratio * 100:.4f}%)"
    )
    assert ratio < 0.05, (
        f"disabled progress hooks cost {ratio * 100:.2f}% of an arrow "
        f"check (>5%)"
    )


def test_skipped_manifest_path_under_5_percent(setup3):
    """``--no-manifest`` (and meta-commands) must skip for free.

    The manifest write happens once per CLI invocation; the opted-out
    path is two attribute probes.  Bound it against a single arrow
    check — the smallest unit of real work a CLI run performs.
    """
    from repro.cli import _maybe_write_manifest

    run_check(setup3)  # warm caches before timing
    check_seconds = best_of(lambda: run_check(setup3))

    skipped = argparse.Namespace(command="check", skip_manifest=True)
    opted_out = argparse.Namespace(command="check", manifest=False)
    per_run_cost = max(
        per_call_cost(
            lambda: _maybe_write_manifest(skipped, [], "t", 0.0, 0),
            calls=20_000,
        ),
        per_call_cost(
            lambda: _maybe_write_manifest(opted_out, [], "t", 0.0, 0),
            calls=20_000,
        ),
    )
    ratio = per_run_cost / check_seconds
    print(
        f"\narrow check: {check_seconds * 1000:.1f}ms; skipped manifest "
        f"path: {per_run_cost * 1e9:.0f}ns/run ({ratio * 100:.4f}%)"
    )
    assert ratio < 0.05, (
        f"skipped manifest path costs {ratio * 100:.2f}% of an arrow "
        f"check (>5%)"
    )


def test_recording_run_stays_usable(setup3):
    run_check(setup3)  # warm caches before timing
    noop_seconds = best_of(lambda: run_check(setup3))

    def recorded():
        with obs.recording():
            run_check(setup3)

    recorded_seconds = best_of(recorded)
    ratio = recorded_seconds / noop_seconds
    print(
        f"\nno-op: {noop_seconds * 1000:.1f}ms, "
        f"recording: {recorded_seconds * 1000:.1f}ms ({ratio:.2f}x)"
    )
    assert ratio < 2.0, (
        f"recording registry slows the arrow check {ratio:.2f}x (>2x)"
    )
