"""E11a: adversary-power ablation.

How much do richer adversaries hurt?  Compares success probabilities of
the composed statement and mean times-to-critical across the adversary
family — oblivious-ish fixed orders, the rotating order, the
coin-peeking obstructionist heuristic, the per-process starver, and
derandomised random orders.  The paper's bounds must survive all of
them (they quantify over every Unit-Time adversary).
"""

from __future__ import annotations

from repro.analysis.experiments import adversary_power_comparison
from repro.analysis.reporting import format_table


def test_asynchrony_ablation(benchmark):
    """E11c: round-synchronous vs fractional-time staggered scheduling.

    The staggered deadline adversaries interleave processes at
    quarter-unit phase offsets — schedules the round-synchronous
    subclass cannot express.  The composed statement and the
    expected-time bound must survive them too.
    """
    import random
    from fractions import Fraction

    from repro.adversary.deadline import (
        StaggeredDeadlineAdversary,
        evenly_staggered,
    )
    from repro.algorithms import lehmann_rabin as lr
    from repro.automaton.execution import ExecutionFragment
    from repro.events.reach import ReachWithinTime
    from repro.execution.sampler import sample_event, sample_time_until

    quantum = Fraction(1, 4)
    automaton = lr.lehmann_rabin_automaton(3, time_increments=(quantum,))
    view = lr.LRProcessView(3)
    adversaries = [
        ("staggered-even", evenly_staggered(view, quantum)),
        (
            "staggered-clustered",
            StaggeredDeadlineAdversary(
                view, [Fraction(0), Fraction(0), Fraction(3, 4)], quantum
            ),
        ),
    ]
    start = lr.canonical_states(3)["all_flip"]
    schema = ReachWithinTime(lr.in_critical, 13, lr.lr_time_of)

    def run():
        rng = random.Random(0)
        rows = []
        for name, adversary in adversaries:
            samples = 120
            wins = sum(
                bool(
                    sample_event(
                        automaton, adversary,
                        ExecutionFragment.initial(start), schema, rng,
                        3_000,
                    ).verdict
                )
                for _ in range(samples)
            )
            times = [
                sample_time_until(
                    automaton, adversary, ExecutionFragment.initial(start),
                    lr.in_critical, lr.lr_time_of, rng, 20_000,
                )
                for _ in range(60)
            ]
            rows.append(
                (name, wins / samples, float(sum(times) / len(times)))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("scheduler", "P[T -13-> C] (>=0.125)", "mean time to C"),
            [(n, f"{p:.3f}", f"{m:.2f}") for n, p, m in rows],
        )
    )
    for name, probability, mean in rows:
        assert probability >= 0.125, name
        assert mean <= 63.0, name


def test_adversary_power(benchmark):
    rows = benchmark.pedantic(
        adversary_power_comparison,
        kwargs=dict(n=3, samples_per_pair=80, time_samples=80),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ("adversary", "P[T -13-> C] (>=0.125)", "mean time to C",
             "unreached"),
            [
                (
                    row.adversary,
                    f"{row.success_estimate:.3f}",
                    f"{row.mean_time_to_c:.2f}",
                    row.unreached,
                )
                for row in rows
            ],
        )
    )
    for row in rows:
        assert row.success_estimate >= 0.125, row
        assert row.unreached == 0, row
        assert row.mean_time_to_c <= 63.0, row
