"""E1-E5: the five leaf arrow statements of Section 6.2 (appendix).

For each proposition the bench measures the worst-case success
probability over the hostile Unit-Time adversary family and asserts the
paper's lower bound:

    E1 (A.1)  P  --1-->_1    C
    E2 (A.3)  T  --2-->_1    RT | C
    E3 (A.15) RT --3-->_1    F | G | P
    E4 (A.14) F  --2-->_1/2  G | P
    E5 (A.11) G  --5-->_1/4  P
"""

from __future__ import annotations

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement
from repro.analysis.reporting import format_table

SAMPLES = 100


def run_leaf(setup, name):
    statement = lr.leaf_statements()[name]
    report = check_lr_statement(
        statement, setup, samples_per_pair=SAMPLES, random_starts=4,
        max_steps=400,
    )
    return statement, report


def check_and_report(statement, report):
    print()
    print(report.summary_line())
    rows = [
        (check.adversary_name, repr(check.start_state), f"{check.estimate:.3f}")
        for check in sorted(report.checks, key=lambda c: c.estimate)[:5]
    ]
    print(format_table(("adversary", "start state", "estimate"), rows))
    assert not report.refuted, report.summary_line()
    # The deterministic (probability-1) arrows must be observed exactly.
    if float(statement.probability) == 1.0:
        assert report.min_estimate == 1.0


@pytest.mark.parametrize(
    "name",
    ["A.1", "A.3", "A.15", "A.14", "A.11"],
    ids=["E1_P_to_C", "E2_T_to_RTC", "E3_RT_to_FGP", "E4_F_to_GP",
         "E5_G_to_P"],
)
def test_leaf_arrow(benchmark, setup3, name):
    statement, report = benchmark.pedantic(
        run_leaf, args=(setup3, name), rounds=1, iterations=1
    )
    check_and_report(statement, report)


@pytest.mark.parametrize(
    "name", ["A.14", "A.11"], ids=["E4_F_to_GP_n4", "E5_G_to_P_n4"]
)
def test_leaf_arrow_ring4(benchmark, setup4, name):
    """The probabilistic leaves again on a ring of 4 (bound is n-free)."""
    statement, report = benchmark.pedantic(
        run_leaf, args=(setup4, name), rounds=1, iterations=1
    )
    check_and_report(statement, report)
