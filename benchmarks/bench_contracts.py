"""Contract-guard overhead on the Monte-Carlo arrow-check hot path.

Two claims, both measured on the A.14 leaf check from the standard
ring-of-3 setup (mirroring ``bench_observability.py``):

* With ``--guards off`` the sampler's residual guard plumbing — one
  ``GuardConfig.checking`` read and one ``fuel_for`` call per sample,
  plus two local branch tests per step — costs **under 5%** of the
  check's wall-clock.  Measured like the observability bench: the
  check is timed, the guard touch points during an identical run are
  counted, each touch's cost is timed in a tight loop, and the product
  is compared against the check time.
* With ``--guards warn`` on a healthy model the same check stays
  within **15%** of the guards-off wall-clock: the per-step enabled
  check rides the automaton's memoised transition objects (an identity
  scan) and the validated-distribution cache, so no equality
  comparison or Fraction arithmetic survives on the steady-state path.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement
from repro.contracts import GuardConfig, fuel_for
from repro.contracts import config as config_module
from repro.execution import sampler as sampler_module

SAMPLES = 40

OFF = GuardConfig(mode="off")
WARN = GuardConfig(mode="warn")


def run_check(setup, guards):
    statement = lr.leaf_statements()["A.14"]
    return check_lr_statement(
        statement, setup, samples_per_pair=SAMPLES, random_starts=2,
        max_steps=200, guards=guards,
    )


def best_of(fn, repeats=3):
    """The fastest of ``repeats`` timed runs, in seconds."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


def per_call_cost(fn, calls=100_000):
    """Mean per-invocation cost of ``fn`` over a tight loop, in seconds."""
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls


def count_guard_touches(setup):
    """Guard touch points of one guards-off check.

    ``GuardConfig.checking`` property reads are counted through a
    wrapping property; ``fuel_for`` through a counting pass-through on
    the name the sampler imported.  Both are exactly the places the
    off mode still executes.
    """
    counts = {"checking": 0, "fuel_for": 0}
    original_checking = config_module.GuardConfig.checking
    original_fuel_for = sampler_module.fuel_for

    def counting_checking(self):
        counts["checking"] += 1
        return original_checking.fget(self)

    def counting_fuel_for(config):
        counts["fuel_for"] += 1
        return original_fuel_for(config)

    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(
            config_module.GuardConfig, "checking", property(counting_checking)
        )
        patcher.setattr(sampler_module, "fuel_for", counting_fuel_for)
        run_check(setup, OFF)
    return counts


def test_guards_off_overhead_under_5_percent(setup3):
    run_check(setup3, OFF)  # warm caches before timing
    check_seconds = best_of(lambda: run_check(setup3, OFF))

    counts = count_guard_touches(setup3)
    costs = {
        "checking": per_call_cost(lambda: OFF.checking),
        "fuel_for": per_call_cost(lambda: fuel_for(OFF)),
    }
    overhead_seconds = sum(counts[name] * costs[name] for name in counts)
    ratio = overhead_seconds / check_seconds
    print(
        f"\narrow check: {check_seconds * 1000:.1f}ms; "
        f"guard touches: {counts}; "
        f"estimated guards-off overhead: {overhead_seconds * 1e6:.0f}us "
        f"({ratio * 100:.2f}%)"
    )
    assert counts["checking"] > 0, "hot path lost its guard plumbing"
    assert ratio < 0.05, (
        f"guards-off plumbing overhead {ratio * 100:.2f}% exceeds 5%"
    )


def test_guards_warn_overhead_under_15_percent(setup3):
    run_check(setup3, OFF)  # warm transition/validation caches
    run_check(setup3, WARN)
    off_seconds = best_of(lambda: run_check(setup3, OFF))
    warn_seconds = best_of(lambda: run_check(setup3, WARN))
    ratio = warn_seconds / off_seconds
    print(
        f"\nguards off: {off_seconds * 1000:.1f}ms, "
        f"warn: {warn_seconds * 1000:.1f}ms ({ratio:.3f}x)"
    )
    assert ratio < 1.15, (
        f"healthy-path warn-mode overhead {ratio:.3f}x exceeds 1.15x"
    )


def test_guard_modes_agree_on_healthy_model(setup3):
    off = run_check(setup3, OFF)
    warn = run_check(setup3, WARN)
    strict = run_check(setup3, GuardConfig(mode="strict"))
    assert off.to_dict() == warn.to_dict() == strict.to_dict()
