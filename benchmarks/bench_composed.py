"""E6: the composed statement ``T --13-->_{1/8} C`` (Section 6.2).

Reproduces the paper's headline result two ways:

* the ledger re-derivation (Proposition 3.2 + Theorem 3.4 applied to the
  five leaves must yield exactly ``T --13-->_1/8 C``), and
* a Monte-Carlo check of the composed statement itself under the
  hostile adversary family — the worst observed success probability
  must not refute 1/8 (it is in fact far higher; the paper's bound is
  deliberately loose).
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement


def derive():
    return lr.lehmann_rabin_proof()


def test_ledger_derivation(benchmark):
    chain = benchmark(derive)
    final = chain.final_statement
    assert final.source == lr.T_CLASS
    assert final.target == lr.C_CLASS
    assert final.time_bound == 13
    assert final.probability == Fraction(1, 8)
    print()
    print(chain.ledger.explain(chain.final_id))


def test_composed_statement_monte_carlo(benchmark, setup3):
    chain = lr.lehmann_rabin_proof()

    def run():
        return check_lr_statement(
            chain.final_statement, setup3, samples_per_pair=100,
            random_starts=4, max_steps=600,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.summary_line())
    assert not report.refuted
    assert report.min_estimate >= 0.125


def test_composed_statement_ring4(benchmark, setup4):
    chain = lr.lehmann_rabin_proof()

    def run():
        return check_lr_statement(
            chain.final_statement, setup4, samples_per_pair=60,
            random_starts=3, max_steps=800,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(report.summary_line())
    assert not report.refuted
    assert report.min_estimate >= 0.125
