"""E8: Proposition 4.2 and the Example 4.1 dependence attack.

Exact execution-tree evaluation on the two-coin model:

* the naive conditional probability "P=H and Q=T given both flipped"
  swings between 0 and 1/2 across adversaries (the paper's point that
  an adversary can push it off the naive 1/4);
* the event-schema probability ``P[first(flip_p,H) & first(flip_q,T)]``
  stays at or above the Proposition 4.2 bound 1/4 for *every*
  adversary;
* the ``next(...)`` event stays at or above ``min(p_i) = 1/2``.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algorithms.coins import (
    FLIP_P,
    FLIP_Q,
    HEADS,
    TAILS,
    both_flip_adversary,
    never_flip_q_adversary,
    p_heads,
    peek_adversary,
    q_tails,
    two_coin_automaton,
)
from repro.analysis.reporting import format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.independence import proposition_4_2_claims
from repro.execution.automaton import ExecutionAutomaton
from repro.execution.measure import exact_event_probability

ADVERSARIES = [
    ("both-flip", both_flip_adversary()),
    ("peek-q-on-H", peek_adversary(HEADS)),
    ("peek-q-on-T", peek_adversary(TAILS)),
    ("never-flip-q", never_flip_q_adversary()),
]


def evaluate_all():
    automaton = two_coin_automaton()
    first_claim, next_claim = proposition_4_2_claims(
        automaton,
        [(FLIP_P, p_heads), (FLIP_Q, q_tails)],
        automaton.states,
    )
    start = ExecutionFragment.initial((None, None))
    results = []
    for name, adversary in ADVERSARIES:
        tree = ExecutionAutomaton(automaton, adversary, start)
        results.append(
            (
                name,
                exact_event_probability(tree, first_claim.event, 4),
                exact_event_probability(tree, next_claim.event, 4),
            )
        )
    return first_claim, next_claim, results


def test_proposition_4_2_bounds(benchmark):
    first_claim, next_claim, results = benchmark(evaluate_all)
    assert first_claim.lower_bound == Fraction(1, 4)
    assert next_claim.lower_bound == Fraction(1, 2)
    rows = []
    for name, conj, nxt in results:
        assert conj >= first_claim.lower_bound, name
        assert nxt >= next_claim.lower_bound, name
        rows.append((name, str(conj), str(nxt)))
    print()
    print(
        format_table(
            ("adversary", "P[first & first] (>=1/4)", "P[next] (>=1/2)"),
            rows,
        )
    )


def test_example_4_1_dependence_attack(benchmark):
    """The peek adversary forces P=H on the both-flipped executions."""
    from repro.events.combinators import Complement, Intersection
    from repro.events.first import FirstOccurrence

    automaton = two_coin_automaton()
    start = ExecutionFragment.initial((None, None))
    occurs_q = Complement(FirstOccurrence(FLIP_Q, lambda s: False))
    pattern_and_both = Intersection(
        [
            FirstOccurrence(FLIP_P, p_heads),
            FirstOccurrence(FLIP_Q, q_tails),
            occurs_q,
        ]
    )

    def conditional(adversary):
        tree = ExecutionAutomaton(automaton, adversary, start)
        joint = exact_event_probability(tree, pattern_and_both, 4)
        both = exact_event_probability(tree, occurs_q, 4)
        return joint / both if both else None

    values = benchmark.pedantic(
        lambda: {
            "both-flip": conditional(both_flip_adversary()),
            "peek-H": conditional(peek_adversary(HEADS)),
            "peek-T": conditional(peek_adversary(TAILS)),
        },
        rounds=1,
        iterations=1,
    )
    # Naive independent estimate: 1/4.  The adversary moves it.
    assert values["both-flip"] == Fraction(1, 4)
    assert values["peek-H"] == Fraction(1, 2)
    assert values["peek-T"] == 0
    print()
    print(f"conditional P[H,T | both flipped]: {values}")
