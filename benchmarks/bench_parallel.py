"""Wall-clock speedup and equivalence of the parallel sampling backend.

Two claims about the fork-pool backend (``docs/parallel.md``):

* **Equivalence** — a standard arrow check produces a byte-identical
  report for ``workers=1`` and ``workers=4`` (runs everywhere, even on
  one CPU: the pool still executes, only concurrency is lost).
* **Speedup** — on a machine with at least 2 CPUs, 4 workers complete
  the same check at least 1.5x faster than the sequential backend.
  Skipped cleanly on smaller machines (this container has 1 CPU) and
  where ``fork`` is unavailable.

The workload is the composed ``T --13--> C`` statement on the standard
ring of 3 — the dominant wall-clock cost of a ``repro verify`` run —
sized so per-task work dwarfs pool setup.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import check_lr_statement
from repro.parallel import available_cpus, fork_available

SAMPLES = 60
RANDOM_STARTS = 4

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel backend needs the fork method"
)
needs_cpus = pytest.mark.skipif(
    available_cpus() < 2,
    reason=f"speedup needs >= 2 CPUs, have {available_cpus()}",
)


def run_check(setup3, workers):
    statement = lr.lehmann_rabin_proof().final_statement
    return check_lr_statement(
        statement, setup3, seed=0, samples_per_pair=SAMPLES,
        random_starts=RANDOM_STARTS, workers=workers,
    )


@needs_fork
def test_parallel_report_matches_sequential(setup3):
    sequential = run_check(setup3, workers=1)
    parallel = run_check(setup3, workers=4)
    assert json.dumps(sequential.to_dict(), sort_keys=True) == json.dumps(
        parallel.to_dict(), sort_keys=True
    )


@needs_fork
@needs_cpus
def test_four_workers_at_least_1_5x_faster(setup3):
    run_check(setup3, workers=1)  # warm caches before timing

    started = time.perf_counter()
    run_check(setup3, workers=1)
    sequential_seconds = time.perf_counter() - started

    started = time.perf_counter()
    run_check(setup3, workers=4)
    parallel_seconds = time.perf_counter() - started

    speedup = sequential_seconds / parallel_seconds
    print(
        f"\nsequential: {sequential_seconds:.2f}s, "
        f"4 workers: {parallel_seconds:.2f}s ({speedup:.2f}x)"
    )
    assert speedup >= 1.5, (
        f"4-worker speedup {speedup:.2f}x below the required 1.5x"
    )
