"""Speedup and byte-identity of the compile-once state-space engine.

Two claims about ``--engine compiled`` (``docs/statespace.md``):

* **Equivalence** — the composed ``T --13--> C`` check produces a
  byte-identical report under the tree and compiled engines, for the
  full adversary family including the uncompilable hashed-random
  members (which fall back to the tree walk per adversary).
* **Speedup** — on the n=3 ring, the compiled engine completes the
  arrow check at least 2x faster than the tree walk once the sampling
  load amortises the one-off compile.  The timed workload restricts
  the family to its compilable (Markov round-policy) members so the
  ratio measures the engine, not the fallback.  Skipped cleanly when
  the compile blows its state budget or the tree baseline finishes too
  fast to time reliably on constrained hardware (this container has
  1 CPU).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import LRExperimentSetup, check_lr_statement
from repro.errors import StateBudgetExceeded

SAMPLES = 60
SPEEDUP_SAMPLES = 1000


def run_check(setup, engine, samples):
    statement = lr.lehmann_rabin_proof().final_statement
    return check_lr_statement(
        statement, setup, seed=0, samples_per_pair=samples,
        random_starts=4, engine=engine,
    )


def test_compiled_report_matches_tree(setup3):
    tree = run_check(setup3, "tree", SAMPLES)
    try:
        compiled = run_check(setup3, "compiled", SAMPLES)
    except StateBudgetExceeded as error:
        pytest.skip(f"compile budget exceeded: {error}")
    auto = run_check(setup3, "auto", SAMPLES)
    tree_json = json.dumps(tree.to_dict(), sort_keys=True)
    assert tree_json == json.dumps(compiled.to_dict(), sort_keys=True)
    assert tree_json == json.dumps(auto.to_dict(), sort_keys=True)


def test_compiled_at_least_2x_faster():
    # Only Markov round policies: the coin-peeking hashed-random
    # adversaries always sample through the tree walk and would dilute
    # the measured ratio with identical work on both sides.
    setup = LRExperimentSetup.build(3, random_seeds=())
    run_check(setup, "tree", SAMPLES)  # warm transition caches

    started = time.perf_counter()
    tree_report = run_check(setup, "tree", SPEEDUP_SAMPLES)
    tree_seconds = time.perf_counter() - started
    if tree_seconds < 0.5:
        pytest.skip(
            f"tree baseline finished in {tree_seconds:.3f}s — too fast "
            "to time a 2x ratio reliably on this hardware"
        )

    started = time.perf_counter()
    try:
        compiled_report = run_check(setup, "compiled", SPEEDUP_SAMPLES)
    except StateBudgetExceeded as error:
        pytest.skip(f"compile budget exceeded: {error}")
    compiled_seconds = time.perf_counter() - started

    assert json.dumps(tree_report.to_dict(), sort_keys=True) == json.dumps(
        compiled_report.to_dict(), sort_keys=True
    )
    speedup = tree_seconds / compiled_seconds
    print(
        f"\ntree: {tree_seconds:.2f}s, compiled: {compiled_seconds:.2f}s "
        f"({speedup:.2f}x, compile amortised over "
        f"{SPEEDUP_SAMPLES} samples/pair)"
    )
    assert speedup >= 2.0, (
        f"compiled speedup {speedup:.2f}x below the required 2x"
    )
