"""E13: the appendix lemmas, exactly (A.2, A.4–A.10, A.12, A.13).

The deepest-fidelity experiment of the reproduction: every conditional
lemma of the paper's appendix is checked with *zero tolerance* — the
maximum probability of a counterexample execution (conditioning
``first(flip, ·)`` events satisfied, conclusion missed within the time
bound), over every hypothesis state (enumerated exhaustively from the
Lemma 6.1-consistent combinations) and every round-synchronous
Unit-Time strategy, must be exactly 0.  The probabilistic lemmas A.12
and A.13 are checked against their 1/2 bounds the same way; A.12's
bound is attained exactly (the paper's constant is tight there).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.lehmann_rabin import appendix as ap
from repro.analysis.reporting import format_table

LEMMA_IDS = [lemma.name for lemma in ap.conditional_lemmas(3)]


@pytest.mark.parametrize("index", range(len(LEMMA_IDS)), ids=LEMMA_IDS)
def test_conditional_lemma_exact(benchmark, index):
    lemma = ap.conditional_lemmas(3)[index]
    result = benchmark.pedantic(
        ap.check_conditional_lemma, args=(lemma, 3), rounds=1, iterations=1
    )
    print(
        f"\n{result.name}: {result.states_checked} hypothesis states, "
        f"max counterexample probability {result.worst_value}"
    )
    assert result.holds


@pytest.mark.parametrize("which", ["A.12", "A.13"])
def test_probabilistic_lemma_exact(benchmark, which):
    lemma = (
        ap.lemma_a12(3) if which == "A.12" else ap.lemma_a13(3)
    )
    result = benchmark.pedantic(
        ap.check_probabilistic_lemma, args=(lemma, 3), rounds=1, iterations=1
    )
    print(
        f"\n{result.name}: {result.states_checked} hypothesis states, "
        f"exact worst success probability {result.worst_value} "
        f"(claimed >= {lemma.probability})"
    )
    assert result.holds
    if which == "A.12":
        # The paper's bound is exactly attained: 1/2 is tight.
        assert result.worst_value == Fraction(1, 2)


def test_appendix_summary_table(benchmark):
    def run():
        rows = []
        for lemma in ap.conditional_lemmas(3):
            result = ap.check_conditional_lemma(lemma, 3)
            rows.append(
                (
                    result.name,
                    result.states_checked,
                    f"t={lemma.time_bound}",
                    str(result.worst_value),
                    "holds" if result.holds else "FAILS",
                )
            )
        for lemma in ap.probabilistic_lemmas(3):
            result = ap.check_probabilistic_lemma(lemma, 3)
            rows.append(
                (
                    result.name,
                    result.states_checked,
                    f"t={lemma.time_bound}, p>={lemma.probability}",
                    str(result.worst_value),
                    "holds" if result.holds else "FAILS",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("lemma", "hypothesis states", "claim", "exact worst value",
             "verdict"),
            rows,
        )
    )
    assert all(row[4] == "holds" for row in rows)
