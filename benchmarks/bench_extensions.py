"""E10: method generality — leader election and the deterministic baseline.

Section 7 hopes the technique applies to other protocols.  This bench:

* re-derives the election chain ``D_n --(3(n-1)+2)-->_{2^{1-n}} L`` and
  validates it by simulation under hostile Unit-Time adversaries;
* compares worst-case time-to-critical of Lehmann-Rabin against the
  deterministic ordered-philosophers baseline on growing rings (both
  bounded; the randomized algorithm needs no symmetry-breaking
  assumption).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.adversary.search import HashedRandomRoundPolicy
from repro.adversary.unit_time import (
    FifoRoundPolicy,
    ReversedRoundPolicy,
    RoundBasedAdversary,
)
from repro.algorithms import election as el
from repro.algorithms import lehmann_rabin as lr
from repro.algorithms import ordered as od
from repro.algorithms.ordered.automaton import OPC, OrderedState
from repro.analysis.reporting import format_table
from repro.automaton.execution import ExecutionFragment
from repro.events.reach import ReachWithinTime
from repro.execution.sampler import sample_event, sample_time_until


@pytest.mark.parametrize("n", [3, 4, 5], ids=lambda n: f"n{n}")
def test_election_composed_bound(benchmark, n):
    chain = el.election_proof(n)
    final = chain.final_statement
    assert final.probability == Fraction(1, 2 ** (n - 1))
    automaton = el.election_automaton(n)
    view = el.ElectionProcessView(n)
    schema = ReachWithinTime(
        el.leader_elected, final.time_bound, el.election_time_of
    )
    start = ExecutionFragment.initial(el.election_initial_state(n))

    def run():
        rng = random.Random(0)
        worst = 1.0
        for policy in (
            FifoRoundPolicy(), ReversedRoundPolicy(), HashedRandomRoundPolicy(3)
        ):
            adversary = RoundBasedAdversary(view, policy)
            samples = 200
            wins = sum(
                bool(
                    sample_event(
                        automaton, adversary, start, schema, rng, 4_000
                    ).verdict
                )
                for _ in range(samples)
            )
            worst = min(worst, wins / samples)
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nworst P[leader within {final.time_bound}] = {worst:.3f} "
          f"(claimed >= {float(final.probability):.3f})")
    assert worst >= float(final.probability)


def test_election_expected_time(benchmark):
    n = 4
    automaton = el.election_automaton(n)
    adversary = RoundBasedAdversary(
        el.ElectionProcessView(n), FifoRoundPolicy()
    )
    start = ExecutionFragment.initial(el.election_initial_state(n))

    def run():
        rng = random.Random(1)
        times = [
            sample_time_until(
                automaton, adversary, start, el.leader_elected,
                el.election_time_of, rng, 5_000,
            )
            for _ in range(200)
        ]
        return float(sum(times) / len(times))

    mean = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = float(el.election_expected_time_bound(n))
    print(f"\nmean election time: {mean:.2f} (bound {bound})")
    assert mean <= bound


def test_benor_progress_and_agreement(benchmark):
    """Ben-Or consensus: the hand-derived arrow statement and safety.

    ``INIT --10-->_{1/8} DECIDED`` (n = 3) must survive every adversary
    tried, including one that spends its crash budget; agreement and
    validity must hold at every sampled state.
    """
    from repro.algorithms import benor as bo

    inputs = (0, 1, 0)
    statement = bo.benor_progress_statement(3)
    automaton = bo.benor_automaton(inputs)
    view = bo.BenOrProcessView(3)

    class CrashingPolicy(FifoRoundPolicy):
        def next_move(self, automaton, fragment, pending, view):
            state = fragment.lstate
            if state.crashed_count() < 1 and state.time >= 1:
                for step in automaton.transitions(state):
                    if step.action == (bo.CRASH, 1):
                        return step
            return super().next_move(automaton, fragment, pending, view)

    schema = ReachWithinTime(
        bo.some_decided, statement.time_bound, bo.benor_time_of
    )
    start = ExecutionFragment.initial(bo.benor_initial_state(inputs))

    def run():
        rng = random.Random(0)
        worst = 1.0
        for policy in (
            FifoRoundPolicy(),
            ReversedRoundPolicy(),
            HashedRandomRoundPolicy(9),
            CrashingPolicy(),
        ):
            adversary = RoundBasedAdversary(view, policy)
            samples = 150
            wins = 0
            for _ in range(samples):
                result = sample_event(
                    automaton, adversary, start, schema, rng, 3_000
                )
                wins += bool(result.verdict)
                for state in result.final.states:
                    assert bo.agreement_holds(state)
                    assert bo.validity_holds(state, inputs)
            worst = min(worst, wins / samples)
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nworst P[decision within {statement.time_bound}] = {worst:.3f} "
          f"(claimed >= {float(statement.probability):.3f})")
    assert worst >= float(statement.probability)


def test_benor_decision_time(benchmark):
    """Measured time to first decision vs the retry-recursion bound."""
    from repro.algorithms import benor as bo

    inputs = (0, 1, 1)
    automaton = bo.benor_automaton(inputs)
    adversary = RoundBasedAdversary(
        bo.BenOrProcessView(3), HashedRandomRoundPolicy(4)
    )
    start = ExecutionFragment.initial(bo.benor_initial_state(inputs))

    def run():
        rng = random.Random(2)
        times = [
            sample_time_until(
                automaton, adversary, start, bo.some_decided,
                bo.benor_time_of, rng, 5_000,
            )
            for _ in range(150)
        ]
        assert all(t is not None for t in times)
        return float(sum(times) / len(times))

    mean = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = float(bo.benor_expected_time_bound(3))
    print(f"\nmean Ben-Or decision time: {mean:.2f} (bound {bound})")
    assert mean <= bound


def test_baseline_comparison(benchmark):
    """LR vs ordered philosophers: worst mean time-to-C by ring size."""

    def measure(automaton, view, start, target, time_of, rng):
        worst = 0.0
        for policy in (FifoRoundPolicy(), HashedRandomRoundPolicy(5)):
            adversary = RoundBasedAdversary(view, policy)
            times = [
                sample_time_until(
                    automaton, adversary, ExecutionFragment.initial(start),
                    target, time_of, rng, 20_000,
                )
                for _ in range(40)
            ]
            assert all(t is not None for t in times)
            worst = max(worst, float(sum(times) / len(times)))
        return worst

    def run():
        rng = random.Random(0)
        rows = []
        for n in (3, 5, 7):
            lr_mean = measure(
                lr.lehmann_rabin_automaton(n),
                lr.LRProcessView(n),
                lr.canonical_states(n)["all_flip"],
                lr.in_critical,
                lr.lr_time_of,
                rng,
            )
            od_mean = measure(
                od.ordered_automaton(n),
                od.OrderedProcessView(n),
                OrderedState(
                    tuple([OPC.W1] * n), tuple([False] * n), Fraction(0)
                ),
                od.ordered_in_critical,
                od.ordered_time_of,
                rng,
            )
            rows.append((n, lr_mean, od_mean))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ("ring size", "LR worst mean", "ordered worst mean"),
            [(n, f"{a:.2f}", f"{b:.2f}") for n, a, b in rows],
        )
    )
    for n, lr_mean, od_mean in rows:
        assert lr_mean <= 63.0  # the paper's constant, n-independent
        assert od_mean <= n + 2  # the baseline's order-imposed bound
