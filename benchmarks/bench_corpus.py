"""Wall-clock budget for the standing defect corpus and the fuzzer.

The corpus is an acceptance gate: every engine/backend PR replays all
built-in entries across engines x guard modes x worker counts before
it can claim byte-identity.  A gate only gets run if it stays cheap,
so this benchmark pins two budgets (generous on purpose — the point is
catching order-of-magnitude regressions, not microbenchmarking):

* the full built-in sweep (~180 matrix cells, including the pooled
  fault-injection entries) must finish inside ``SWEEP_BUDGET_S``;
* a ``FUZZ_BUDGET``-case differential campaign must finish inside
  ``FUZZ_BUDGET_S`` — and, rerun with the same seed, must reproduce
  byte-identically (the determinism contract is cheap enough to smoke
  here too).

``python tools/bench.py --only corpus`` appends the wall times to
``BENCH_corpus.json`` so the trajectory shows drift before the budget
trips.
"""

from __future__ import annotations

import json
import time

from repro.corpus import builtin_entries, run_corpus, run_fuzz

#: Full-sweep budget, seconds.  The sweep costs ~3s on the reference
#: container; 60s is the "someone made every cell compile from
#: scratch" alarm, not a perf target.
SWEEP_BUDGET_S = 60.0

FUZZ_BUDGET = 80
FUZZ_BUDGET_S = 30.0


def test_builtin_sweep_within_budget():
    started = time.perf_counter()
    report = run_corpus(builtin_entries())
    elapsed = time.perf_counter() - started
    assert report.ok, "\n".join(report.problems)
    cells = sum(len(result.cells) for result in report.results)
    assert cells >= 50  # the matrix actually ran, even without fork
    assert elapsed < SWEEP_BUDGET_S, (
        f"corpus sweep took {elapsed:.1f}s over {cells} cells "
        f"(budget {SWEEP_BUDGET_S:.0f}s)"
    )


def test_fuzz_campaign_within_budget_and_deterministic():
    started = time.perf_counter()
    first = run_fuzz(seed=0, budget=FUZZ_BUDGET)
    elapsed = time.perf_counter() - started
    assert first.ok
    assert elapsed < FUZZ_BUDGET_S, (
        f"{FUZZ_BUDGET}-case fuzz campaign took {elapsed:.1f}s "
        f"(budget {FUZZ_BUDGET_S:.0f}s)"
    )
    second = run_fuzz(seed=0, budget=FUZZ_BUDGET)
    assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
        second.to_dict(), sort_keys=True
    )
