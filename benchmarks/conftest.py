"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one experiment row from DESIGN.md's index
(the paper has no numbered tables; every quantitative claim of
Sections 4 and 6.2 and the appendix is reproduced here).  Benchmarks
assert the paper's *shape* — measured worst-case probabilities meet the
claimed lower bounds, measured expected times stay under the claimed
constants — and time the verification machinery itself.
"""

from __future__ import annotations

import pytest

from repro.analysis.montecarlo import LRExperimentSetup


@pytest.fixture(scope="session")
def setup3() -> LRExperimentSetup:
    """The standard ring-of-3 experiment setup."""
    return LRExperimentSetup.build(3, random_seeds=(1, 2, 3))


@pytest.fixture(scope="session")
def setup4() -> LRExperimentSetup:
    """The ring-of-4 experiment setup."""
    return LRExperimentSetup.build(4, random_seeds=(1, 2))
