"""E7: the expected-time bound (Section 6.2).

Reproduces:

* the recursion ``V = 1/8*10 + 1/2*(5+V1) + 3/8*(10+V2)`` solving to
  ``E[V] = 60`` and the end-to-end bound ``63 = 2 + 60 + 1``, exactly;
* measured mean and maximum time-to-critical from states of ``T`` under
  every hostile adversary — all means must sit below 63 (they sit far
  below it: the bound is loose, as the paper itself notes).
"""

from __future__ import annotations

from repro.algorithms import lehmann_rabin as lr
from repro.analysis.montecarlo import measure_lr_expected_time
from repro.analysis.reporting import format_table
from repro.proofs.expected_time import geometric_bound


def test_recursion_solution(benchmark):
    recursion = benchmark(lr.section_6_2_recursion)
    assert recursion.solve() == 60
    assert lr.expected_time_bound() == 63


def test_geometric_bound_is_coarser(benchmark):
    chain = lr.lehmann_rabin_proof()
    bound = benchmark(geometric_bound, chain.final_statement)
    # The naive t/p bound: 13 / (1/8) = 104 -- the paper's refinement
    # (63) must beat it.
    assert bound == 104
    assert lr.expected_time_bound() < bound


def test_measured_expected_time(benchmark, setup3):
    def run():
        return measure_lr_expected_time(setup3, samples=120, max_steps=20_000)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, report in sorted(reports.items()):
        assert report.unreached == 0, name
        assert report.mean <= 63.0, (name, report.mean)
        rows.append((name, f"{report.mean:.2f}", str(report.maximum)))
    print()
    print(format_table(("adversary", "mean time to C", "max observed"), rows))


def test_exact_worst_case_expected_time(benchmark, setup3):
    """The sharpest E7 number: the *exact* worst-case expected time to
    the critical region over every round-synchronous Unit-Time
    strategy, from the canonical trying states (n = 3).  The paper's 63
    must dominate all of them (it dominates by an order of magnitude —
    the paper itself calls the bound improvable)."""
    from repro.mdp.expected_time import extremal_expected_time_rounds

    states = lr.canonical_states(3)
    names = ("all_flip", "contended", "one_trying", "with_exiter")

    def run():
        return {
            name: extremal_expected_time_rounds(
                setup3.automaton,
                setup3.view,
                lr.in_critical,
                states[name],
                lambda s: s.untimed(),
                maximise=True,
                tolerance=1e-7,
            )
            for name in names
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(name, f"{value:.4f}") for name, value in values.items()]
    print()
    print(format_table(
        ("start state", "exact worst-case expected time (vs bound 63)"),
        rows,
    ))
    for name, value in values.items():
        assert value <= 63.0, (name, value)
    # The flip-everything state's exact value is 13/3.
    assert abs(values["all_flip"] - 13 / 3) < 1e-5


def test_phase_decomposition(benchmark, setup3):
    """E7b: the V-recursion's branch structure, measured.

    The paper's recursion prices one attempt from ``RT`` as: success
    (>= 1/8, time <= 10), failure at the third arrow (<= 1/2, time
    <= 5), failure at the fourth (<= 3/8, time <= 10).  Replaying that
    accounting on sampled runs, the measured frequencies must fit the
    coefficients and the branch times must respect the caps (+1 unit of
    discretisation for the crossing witness)."""
    import random

    from repro.algorithms.lehmann_rabin.phases import (
        FAIL_FOURTH,
        FAIL_THIRD,
        SUCCESS,
        sample_phase_statistics,
    )

    rng = random.Random(0)
    starts = lr.sample_states_in(lr.RT_CLASS, 3, 6, rng)

    def run():
        results = {}
        for name, adversary in setup3.adversaries:
            results[name] = sample_phase_statistics(
                setup3.automaton, adversary, starts, rng, attempts=150
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, stats in sorted(results.items()):
        rows.append(
            (
                name,
                f"{stats.frequency(SUCCESS):.3f}",
                f"{stats.frequency(FAIL_THIRD):.3f}",
                f"{stats.frequency(FAIL_FOURTH):.3f}",
                str(stats.max_time(SUCCESS)),
            )
        )
        assert stats.respects_recursion_coefficients(), name
        assert stats.max_time(SUCCESS) <= 10, name
        assert stats.max_time(FAIL_THIRD) <= 6, name
        assert stats.max_time(FAIL_FOURTH) <= 11, name
    print()
    print(format_table(
        ("adversary", "P[success] (>=0.125)", "P[fail 3rd] (<=0.5)",
         "P[fail 4th] (<=0.375)", "max success time (<=10)"),
        rows,
    ))


def test_measured_expected_time_ring4(benchmark, setup4):
    def run():
        return measure_lr_expected_time(setup4, samples=80, max_steps=20_000)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, report in reports.items():
        assert report.unreached == 0, name
        assert report.mean <= 63.0, (name, report.mean)
