"""E16: exhaustive verification over entire regions (n = 3).

The strongest results in the reproduction: every leaf proposition
checked over *every* Lemma 6.1-consistent state of its region against
*every* round-synchronous Unit-Time strategy, plus the composed
statement over the entire ``T`` region.  No sampling anywhere.

Findings (asserted below):

* A.1/A.3/A.15 have exhaustive minimum 1 — deterministic, as claimed;
* A.14's exhaustive minimum is 1 on a ring of three (its 1/2 bound's
  randomness is not needed at this size);
* A.11's exhaustive minimum is exactly **1/2**, double the paper's 1/4;
* the composed statement's exhaustive minimum is **15/16**, versus the
  claimed 1/8 — the paper's composition loses a factor of 7.5 on this
  ring, exactly quantified.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms.lehmann_rabin.exhaustive import (
    LEAF_SPECS,
    all_consistent_states,
    exhaustive_composed_check,
    exhaustive_leaf_check,
)
from repro.analysis.reporting import format_table


def test_exhaustive_leaf_table(benchmark):
    def run():
        return [exhaustive_leaf_check(name, 3) for name in sorted(LEAF_SPECS)]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            r.name,
            r.region,
            r.states_checked,
            str(r.bound),
            str(r.exact_minimum),
            "holds" if r.holds else "FAILS",
        )
        for r in results
    ]
    print()
    print(format_table(
        ("proposition", "region", "states", "paper bound",
         "exhaustive min", "verdict"),
        rows,
    ))
    by_name = {r.name: r for r in results}
    assert all(r.holds for r in results)
    assert by_name["A.1"].exact_minimum == 1
    assert by_name["A.3"].exact_minimum == 1
    assert by_name["A.15"].exact_minimum == 1
    assert by_name["A.14"].exact_minimum == 1
    assert by_name["A.11"].exact_minimum == Fraction(1, 2)


def test_exhaustive_composed_statement(benchmark):
    """T --13--> C over every T state: exact minimum 15/16 (>= 1/8)."""

    def run():
        return exhaustive_composed_check(3, rounds=13)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\ncomposed statement, exhaustive over {result.states_checked} "
        f"T states: exact minimum {result.exact_minimum} "
        f"(paper bound {result.bound}), worst state {result.witness!r}"
    )
    assert result.holds
    assert result.exact_minimum == Fraction(15, 16)
    assert result.states_checked == 3896


@pytest.mark.parametrize(
    "name,expected_min",
    [("A.14", Fraction(3, 4)), ("A.11", Fraction(1, 2))],
    ids=["A14_n4", "A11_n4"],
)
def test_exhaustive_probabilistic_leaves_ring4(benchmark, name, expected_min):
    """The probabilistic leaves over their entire n = 4 regions.

    At this size randomness becomes load-bearing: A.14's exhaustive
    minimum drops from 1 (n = 3) to 3/4 — the adversary can force a
    coin to matter — while A.11's stays at exactly 1/2.  Both still
    dominate the paper's bounds (1/2 and 1/4)."""

    def run():
        return exhaustive_leaf_check(name, 4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n{name} on n=4: {result.states_checked} states, exhaustive "
        f"min {result.exact_minimum} (paper bound {result.bound}), "
        f"worst state {result.witness!r}"
    )
    assert result.holds
    assert result.exact_minimum == expected_min


def test_enumeration_throughput(benchmark):
    """Speed of the consistent-state enumeration itself."""
    from repro.algorithms.lehmann_rabin import exhaustive as ex

    def run():
        ex._STATE_CACHE.clear()
        return len(all_consistent_states(3))

    count = benchmark(run)
    assert count == 4382
