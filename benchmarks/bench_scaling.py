"""E11b: ring-size and deadline ablations.

The paper's constants are independent of the ring size ``n``; the
scaling sweep confirms the measured worst-case probability of
``T --13--> C`` and the measured expected times do not degrade as the
ring grows.  The horizon sweep locates the paper's (loose) deadline 13
on the measured probability-vs-deadline curve.
"""

from __future__ import annotations

from repro.analysis.experiments import horizon_sweep, ring_size_sweep
from repro.analysis.reporting import format_table


def test_ring_size_sweep(benchmark):
    rows = benchmark.pedantic(
        ring_size_sweep,
        kwargs=dict(sizes=(3, 4, 5), samples_per_pair=50, time_samples=50),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ("n", "min P[T -13-> C]", "claimed", "worst mean time",
             "worst max time"),
            [
                (
                    row.n,
                    f"{row.min_success_estimate:.3f}",
                    f"{row.claimed:.3f}",
                    f"{row.mean_time_to_c:.2f}",
                    f"{row.max_time_to_c:.1f}",
                )
                for row in rows
            ],
        )
    )
    for row in rows:
        assert row.min_success_estimate >= row.claimed, row
        assert row.mean_time_to_c <= 63.0, row


def test_horizon_sweep(benchmark):
    rows = benchmark.pedantic(
        horizon_sweep,
        kwargs=dict(bounds=(3, 5, 8, 13, 20), n=3, samples_per_pair=60),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ("deadline t", "min P[T -t-> C]"),
            [(row.time_bound, f"{row.min_success_estimate:.3f}") for row in rows],
        )
    )
    # Monotone (within sampling noise) and already above 1/8 at t = 13.
    at_13 = next(r for r in rows if r.time_bound == 13)
    assert at_13.min_success_estimate >= 0.125
    estimates = [row.min_success_estimate for row in rows]
    for earlier, later in zip(estimates, estimates[1:]):
        assert later >= earlier - 0.15  # allow sampling noise
