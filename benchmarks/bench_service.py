"""Job-service overhead: serving must be cheap, cache hits cheaper.

Two claims about the durable verification service (``docs/service.md``),
both measured against one representative verification job:

* **Serving overhead under 5%.**  Submitting a job and draining it
  through ``repro serve`` adds WAL appends, a claim/fold round-trip, a
  heartbeat thread, supervision, and a cache write on top of the
  verification work itself.  All of that must cost less than 5% over
  running the same job in a one-shot forked worker process — the
  baseline any out-of-process execution pays, so the measured gap is
  the service machinery alone (process isolation's copy-on-write cost
  scales with the job and belongs to both sides).  The durability
  layer is bookkeeping around the real work, not a tax on it.
* **Cache hits at least 90% faster.**  Resubmitting the identical spec
  and draining again must complete in at most 10% of the first serve's
  wall-clock: the result is read back from the content-addressed
  cache, sha256-verified, and recorded — zero verification work.

The job is sized at a few seconds of verification so the fixed
per-serve costs (process fork, polling quanta) are measured against a
realistic workload rather than dominating a toy one.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.parallel import fork_available
from repro.service import JobSpec, JobStore
from repro.service.supervisor import Supervisor
from repro.service.worker import run_job_argv

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method"
)

#: One representative verification job, sized at a few seconds so
#: fixed service costs are amortised the way real campaigns see them.
JOB = ("check", "--prop", "A.14", "--samples", "220", "--n", "5")


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def best_of(fn, repeats=3):
    """The fastest of ``repeats`` timed runs, in seconds.

    This container's wall-clock jitters around +-5% on identical
    work, which would swamp a 5% budget measured from single samples;
    the minimum of a few runs is the stable estimate of the true cost
    (the same idiom as the other bench suites).
    """
    best = None
    for _ in range(repeats):
        seconds, _result = _timed(fn)
        best = seconds if best is None else min(best, seconds)
    return best


def _serve_drained(store_root):
    return Supervisor(
        root=str(store_root), workers=1, drain=True, poll_seconds=0.02,
    ).run()


def _run_in_fork():
    """The baseline: the same job in a one-shot forked worker."""
    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=run_job_argv, args=(JOB,))
    process.start()
    process.join()
    assert process.exitcode == 0


@needs_fork
def test_served_overhead_under_5_percent(tmp_path):
    run_job_argv(JOB)  # warm every import and cache before timing
    direct_seconds = best_of(_run_in_fork)

    roots = iter(
        tmp_path / f"svc{i}" for i in range(10)
    )

    def serve_fresh():
        # A fresh store per repeat: a reused root would serve the
        # second repeat from the result cache and measure nothing.
        store_root = next(roots)
        with JobStore(str(store_root)) as store:
            store.submit(JobSpec.parse(JOB))
        summary = _serve_drained(store_root)
        assert summary["executed"] == 1
        return summary

    served_seconds = best_of(serve_fresh)
    overhead = served_seconds / direct_seconds - 1.0
    print(
        f"\ndirect: {direct_seconds:.2f}s; served: {served_seconds:.2f}s "
        f"(overhead {overhead * 100:+.1f}%)"
    )
    assert overhead < 0.05, (
        f"served run costs {overhead * 100:.1f}% over a direct run "
        "(budget: 5%)"
    )


@needs_fork
def test_cache_hit_speedup_at_least_90_percent(tmp_path):
    store_root = tmp_path / "svc"
    with JobStore(str(store_root)) as store:
        store.submit(JobSpec.parse(JOB))
    first_seconds, summary = _timed(lambda: _serve_drained(store_root))
    assert summary["executed"] == 1

    with JobStore(str(store_root)) as store:
        store.submit(JobSpec.parse(JOB))
    second_seconds, summary = _timed(lambda: _serve_drained(store_root))
    assert summary["served_from_cache"] == 1
    assert summary["executed"] == 0

    ratio = second_seconds / first_seconds
    print(
        f"\nfirst serve: {first_seconds:.2f}s; cached serve: "
        f"{second_seconds:.2f}s ({(1 - ratio) * 100:.1f}% faster)"
    )
    assert ratio <= 0.10, (
        f"cached serve took {ratio * 100:.1f}% of the first serve "
        "(budget: 10%)"
    )
