"""Gated lint runner: best available checker wins.

Preference order:

1. ``ruff check`` (if importable or on PATH)
2. ``python -m pyflakes`` (if importable)
3. stdlib fallback: byte-compile everything (syntax errors) plus an
   AST pass flagging unused imports — the pyflakes subset that matters
   most for this codebase.

The container deliberately ships no third-party linters, so the
fallback is the common path; the runner upgrades itself automatically
wherever ruff or pyflakes happen to exist.

Independently of which checker wins, an AST pass over ``src/`` forbids
silent error swallowing: bare ``except:`` and ``except Exception:``
(or ``except BaseException:``) with a body that only passes.  The
fault-tolerant pool runtime leans on exceptions for crash, timeout,
and corruption recovery — a swallowed error there turns a recoverable
fault into silent data loss.

The same pass forbids ``assert`` statements under ``src/``: they are
stripped under ``python -O``, so runtime validation must raise a typed
error from :mod:`repro.errors` or go through the contract-guard layer
(``docs/contracts.md``) instead.  Tests and benchmarks are exempt —
``assert`` is pytest's native idiom there.

It also forbids constructing ``random.Random`` under ``src/`` outside
``parallel/seeds.py``: every RNG must come from
:func:`repro.parallel.seeds.derive_rng` or
:func:`repro.parallel.seeds.rng_from_seed`, so the cross-engine
byte-identity guarantee (``docs/statespace.md``) rests on one seeding
discipline instead of scattered constructor calls.

Append-mode ``open()`` (and ``Path.open``) under ``src/`` is forbidden
outside ``repro/durable_io.py``: every append-only log — checkpoints,
manifests, corpus files, the job-service WAL — must go through the
durable-io helper's fsynced, torn-tail-repairing appender
(``docs/service.md``), so crash recovery rests on one write
discipline instead of scattered file handles.

Similarly, ``import numpy`` under ``src/`` is forbidden outside
``statespace/np_backend.py``: numpy is an *optional* accelerator, and
that module is the single gated entry point that degrades to pure
python when it is absent.  A stray import anywhere else would make the
library hard-require numpy and break containers without it.

Likewise, importing ``repro.algorithms.lehmann_rabin`` under ``src/``
is forbidden outside ``src/repro/models/`` and
``src/repro/algorithms/``: the verification stack reaches case studies
exclusively through the model registry (``repro.models``), and this
ban keeps the pluggable-model decoupling enforced — a new hard-wired
Lehmann-Rabin dependency in the CLI, analysis, statespace, corpus, or
service layers would silently re-couple the stack to one case study
(``docs/models.md``).

Finally, every ``incr(``/``gauge(``/``observe(``/``counter(``/
``histogram(`` call site under ``src/`` whose first argument is a
string literal must name a metric declared in
``src/repro/obs/names.py`` (exactly, or extending a declared dynamic
prefix such as ``ledger.rule.``).  A typo'd name would otherwise
record into a dead metric that no table, manifest, or ``runs diff``
ever reads.

A corpus-sync pass (mirroring the metric-name rule) keeps the defect
corpus and the error taxonomy aligned: every strict subclass of
``ContractViolation`` / ``PoolFaultError`` / ``StateSpaceError`` /
``ServiceError`` / ``ModelRegistryError`` in
``src/repro/errors.py`` must have at least one entry in
``src/repro/corpus/registry.py`` claiming it via a literal
``expected_class="Name"`` keyword, and every claimed name must be a
real taxonomy subclass.  A taxonomy class without a corpus entry is an
error class no engine is forced to classify identically — exactly the
gap the differential corpus exists to close (``docs/corpus.md``).

Usage: ``python tools/lint.py [paths...]`` (defaults to src tests
benchmarks tools). Exits nonzero on findings.
"""

from __future__ import annotations

import ast
import compileall
import importlib.util
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_PATHS = ("src", "tests", "benchmarks", "tools")


def run_external(argv, paths):
    result = subprocess.run([*argv, *paths])
    return result.returncode


def python_files(paths):
    for path in paths:
        path = Path(path)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


class ImportUsage(ast.NodeVisitor):
    """Collects imported names and every name/attribute-root used."""

    def __init__(self):
        self.imports = {}  # name -> line
        self.used = set()

    def visit_Import(self, node):
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imports[name] = node.lineno

    def visit_ImportFrom(self, node):
        if node.module == "__future__":
            return  # compiler directives, not bindings
        for alias in node.names:
            if alias.name == "*":
                continue
            name = alias.asname or alias.name
            self.imports[name] = node.lineno

    def visit_Name(self, node):
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node):
        self.generic_visit(node)


def unused_imports(path):
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return []  # compileall already reported it
    usage = ImportUsage()
    usage.visit(tree)
    # Names in any string constant count as used: __all__ entries,
    # string annotations, docstring cross-references.  Generous on
    # purpose — a fallback linter must not produce false positives.
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            usage.used.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
    return [
        (line, name)
        for name, line in sorted(usage.imports.items(), key=lambda kv: kv[1])
        if name not in usage.used and not name.startswith("_")
    ]


def _is_src_path(path):
    return "src" in Path(path).parts


def _swallows_everything(handler):
    """True for ``except:`` / ``except Exception:`` / ``except BaseException:``."""
    if handler.type is None:
        return True
    node = handler.type
    return isinstance(node, ast.Name) and node.id in ("Exception", "BaseException")


def _body_only_passes(body):
    """True when the handler does nothing: pass / ... / bare strings."""
    def inert(stmt):
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)

    return all(inert(stmt) for stmt in body)


def _constructs_random(node):
    """True for ``random.Random(...)`` / ``Random(...)`` call sites."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Random"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "Random"
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
    )


def _is_seeds_module(path):
    return Path(path).parts[-2:] == ("parallel", "seeds.py")


def _is_np_backend_module(path):
    return Path(path).parts[-2:] == ("statespace", "np_backend.py")


def _is_durable_io_module(path):
    return Path(path).parts[-2:] == ("repro", "durable_io.py")


def _append_mode_open(node):
    """True for ``open(..., 'a...')`` / ``thing.open('a...')`` sites."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode_arg = node.args[1] if len(node.args) > 1 else None
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        mode_arg = node.args[0] if node.args else None
    else:
        return False
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_arg = keyword.value
    return (
        isinstance(mode_arg, ast.Constant)
        and isinstance(mode_arg.value, str)
        and "a" in mode_arg.value
    )


def _imports_numpy(node):
    """True for ``import numpy`` / ``from numpy... import`` statements."""
    if isinstance(node, ast.Import):
        return any(
            alias.name == "numpy" or alias.name.startswith("numpy.")
            for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        return module == "numpy" or module.startswith("numpy.")
    return False


_LR_PACKAGE = "repro.algorithms.lehmann_rabin"


def _imports_lehmann_rabin(node):
    """True for imports reaching ``repro.algorithms.lehmann_rabin``.

    Covers ``import repro.algorithms.lehmann_rabin[.sub]``,
    ``from repro.algorithms.lehmann_rabin[.sub] import ...``, and
    ``from repro.algorithms import lehmann_rabin``.
    """
    if isinstance(node, ast.Import):
        return any(
            alias.name == _LR_PACKAGE
            or alias.name.startswith(_LR_PACKAGE + ".")
            for alias in node.names
        )
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module == _LR_PACKAGE or module.startswith(_LR_PACKAGE + "."):
            return True
        if module == "repro.algorithms":
            return any(
                alias.name == "lehmann_rabin" for alias in node.names
            )
    return False


def _may_import_algorithms(path):
    """True for the packages allowed to import concrete algorithms."""
    parts = Path(path).parts
    for anchor in ("models", "algorithms"):
        if anchor in parts:
            index = parts.index(anchor)
            if index >= 1 and parts[index - 1] == "repro":
                return True
    return False


def banned_handlers(path):
    """Banned constructs under ``src/``: findings as (line, message).

    Covers silent error swallowing, runtime-validation ``assert``, and
    out-of-band ``random.Random`` construction.
    """
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return []  # the active checker reports it
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(
                (node.lineno, "bare 'except:' — name the exceptions")
            )
        elif _swallows_everything(node) and _body_only_passes(node.body):
            findings.append(
                (node.lineno,
                 "'except Exception: pass' swallows errors silently — "
                 "handle or re-raise")
            )
    for node in ast.walk(tree):
        if isinstance(node, ast.Assert):
            findings.append(
                (node.lineno,
                 "'assert' is stripped under python -O — raise a typed "
                 "repro.errors exception or use the contracts guard layer")
            )
    if not _is_seeds_module(path):
        for node in ast.walk(tree):
            if _constructs_random(node):
                findings.append(
                    (node.lineno,
                     "construct RNGs via repro.parallel.seeds "
                     "(derive_rng / rng_from_seed), not random.Random — "
                     "one seeding discipline backs the cross-engine "
                     "byte-identity guarantee")
                )
    if not _is_durable_io_module(path):
        for node in ast.walk(tree):
            if _append_mode_open(node):
                findings.append(
                    (node.lineno,
                     "append-mode open() must go through "
                     "repro.durable_io (DurableAppender / "
                     "append_json_line) — one fsynced, "
                     "torn-tail-repairing append discipline backs "
                     "crash recovery")
                )
    if not _is_np_backend_module(path):
        for node in ast.walk(tree):
            if _imports_numpy(node):
                findings.append(
                    (node.lineno,
                     "import numpy only inside "
                     "statespace/np_backend.py — numpy is an optional "
                     "accelerator behind that one gated module; "
                     "everything else must run without it")
                )
    if not _may_import_algorithms(path):
        for node in ast.walk(tree):
            if _imports_lehmann_rabin(node):
                findings.append(
                    (node.lineno,
                     "import repro.algorithms.lehmann_rabin only inside "
                     "src/repro/models/ or src/repro/algorithms/ — the "
                     "rest of the stack reaches case studies through the "
                     "model registry (repro.models), keeping the "
                     "pluggable-model decoupling enforced "
                     "(docs/models.md)")
                )
    return findings


# -- metric-name declarations ------------------------------------------

#: The obs helper / Metrics method names whose literal first argument
#: is a metric name.
_METRIC_CALLS = ("incr", "gauge", "observe", "counter", "histogram")

_NAMES_MODULE = (
    Path(__file__).resolve().parent.parent
    / "src" / "repro" / "obs" / "names.py"
)


def metric_catalog(names_path=_NAMES_MODULE):
    """(exact names, dynamic prefixes) declared in ``obs/names.py``.

    Parsed from the AST (the linter must not import ``src/``): the keys
    of the ``METRICS`` and ``DYNAMIC_PREFIXES`` dict literals.  Returns
    ``None`` when the module is missing or unparseable — the pass is
    then skipped rather than flagging everything.
    """
    try:
        tree = ast.parse(names_path.read_text(), filename=str(names_path))
    except (OSError, SyntaxError):
        return None
    exact = set()
    prefixes = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        else:
            continue
        names = {t.id for t in targets if isinstance(t, ast.Name)}
        if not isinstance(node.value, ast.Dict):
            continue
        keys = [
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        ]
        if "METRICS" in names:
            exact.update(keys)
        elif "DYNAMIC_PREFIXES" in names:
            prefixes.extend(keys)
    if not exact:
        return None
    return exact, prefixes


def _literal_metric_name(node):
    """The literal first argument of an obs metric call, if it is one."""
    if not isinstance(node, ast.Call) or not node.args:
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        called = func.attr
    elif isinstance(func, ast.Name):
        called = func.id
    else:
        return None
    if called not in _METRIC_CALLS:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def undeclared_metric_sites(path, exact, prefixes):
    """Call sites in ``path`` naming metrics absent from the catalog."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return []  # the active checker reports it
    findings = []
    for node in ast.walk(tree):
        name = _literal_metric_name(node)
        if name is None:
            continue
        if name in exact:
            continue
        if any(name.startswith(prefix) for prefix in prefixes):
            continue
        findings.append(
            (node.lineno,
             f"metric name {name!r} is not declared in "
             f"src/repro/obs/names.py — declare it there (or extend a "
             f"dynamic prefix) so it shows up in the catalog, docs, and "
             f"runs diff")
        )
    return findings


# -- corpus <-> error-taxonomy sync ------------------------------------

_ERRORS_MODULE = (
    Path(__file__).resolve().parent.parent
    / "src" / "repro" / "errors.py"
)

_CORPUS_REGISTRY_MODULE = (
    Path(__file__).resolve().parent.parent
    / "src" / "repro" / "corpus" / "registry.py"
)

#: The public taxonomy roots whose strict subclasses the defect corpus
#: must cover — the contracts, pool-fault, and state-space families.
_TAXONOMY_ROOTS = (
    "ContractViolation",
    "PoolFaultError",
    "StateSpaceError",
    "ServiceError",
    "ModelRegistryError",
)


def taxonomy_classes(errors_path=_ERRORS_MODULE):
    """Strict subclasses of the public taxonomy roots in ``errors.py``.

    Parsed from the AST (the linter must not import ``src/``); returns
    ``None`` when the module is missing or unparseable — the sync pass
    is then skipped rather than flagging everything.
    """
    try:
        tree = ast.parse(errors_path.read_text(), filename=str(errors_path))
    except (OSError, SyntaxError):
        return None
    bases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = [
                base.id for base in node.bases
                if isinstance(base, ast.Name)
            ]
    if not bases:
        return None

    def descends(name, root, seen=()):
        if name in seen:
            return False
        for base in bases.get(name, ()):
            if base == root or descends(base, root, (*seen, name)):
                return True
        return False

    required = {
        name
        for name in bases
        if name not in _TAXONOMY_ROOTS
        and any(descends(name, root) for root in _TAXONOMY_ROOTS)
    }
    return required or None


def corpus_expected_classes(registry_path=_CORPUS_REGISTRY_MODULE):
    """``expected_class="..."`` literals in the corpus registry, with
    the line of their call site.  ``None`` when the registry is missing
    or unparseable (graceful skip, mirroring :func:`metric_catalog`)."""
    try:
        tree = ast.parse(
            registry_path.read_text(), filename=str(registry_path)
        )
    except (OSError, SyntaxError):
        return None
    declared = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for keyword in node.keywords:
            if (
                keyword.arg == "expected_class"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, str)
            ):
                declared.setdefault(keyword.value.value, node.lineno)
    return declared or None


def corpus_sync_findings(
    errors_path=_ERRORS_MODULE, registry_path=_CORPUS_REGISTRY_MODULE
):
    """Both directions of the corpus/taxonomy contract, as findings.

    Every strict subclass of a public taxonomy root must have >= 1
    corpus entry claiming it (``expected_class="Name"``), and every
    claimed class must be a real taxonomy subclass.
    """
    required = taxonomy_classes(errors_path)
    declared = corpus_expected_classes(registry_path)
    if required is None or declared is None:
        return []
    findings = []
    for name, line in sorted(declared.items()):
        if name not in required:
            findings.append(
                (registry_path, line,
                 f"corpus entry claims expected_class={name!r}, which is "
                 f"not a subclass of {'/'.join(_TAXONOMY_ROOTS)} in "
                 f"src/repro/errors.py")
            )
    for name in sorted(required - set(declared)):
        findings.append(
            (registry_path, 1,
             f"error-taxonomy class {name!r} has no defect-corpus entry "
             f"— add one to src/repro/corpus/registry.py with "
             f"expected_class={name!r} so every engine is forced to "
             f"classify it identically")
        )
    return findings


def run_ban_check(paths):
    """Always-on pass: forbid banned constructs in ``src/``."""
    findings = 0
    catalog = metric_catalog()
    for path in python_files(paths):
        if not _is_src_path(path):
            continue
        for line, message in banned_handlers(path):
            print(f"{path}:{line}: {message}")
            findings += 1
        if catalog is not None and path.resolve() != _NAMES_MODULE:
            for line, message in undeclared_metric_sites(path, *catalog):
                print(f"{path}:{line}: {message}")
                findings += 1
    for path, line, message in corpus_sync_findings():
        print(f"{path}:{line}: {message}")
        findings += 1
    if findings:
        print(f"{findings} banned construct(s)")
    return 0 if not findings else 1


def run_fallback(paths):
    # Keep bytecode out of the tree: __pycache__ litter from a lint run
    # should never show up in `git status`.
    with tempfile.TemporaryDirectory() as cache_dir:
        sys.pycache_prefix = cache_dir
        try:
            ok = all(
                compileall.compile_dir(p, quiet=1, force=True)
                if Path(p).is_dir()
                else compileall.compile_file(p, quiet=1, force=True)
                for p in paths
            )
        finally:
            sys.pycache_prefix = None
    findings = 0
    for path in python_files(paths):
        for line, name in unused_imports(path):
            print(f"{path}:{line}: unused import '{name}'")
            findings += 1
    if findings:
        print(f"{findings} unused import(s)")
    return 0 if ok and not findings else 1


def main(argv=None):
    paths = (argv if argv else list(sys.argv[1:])) or [
        p for p in DEFAULT_PATHS if Path(p).exists()
    ]
    banned = run_ban_check(paths)
    if shutil.which("ruff"):
        return run_external(["ruff", "check"], paths) or banned
    if importlib.util.find_spec("pyflakes"):
        return run_external([sys.executable, "-m", "pyflakes"], paths) or banned
    print("lint: no ruff/pyflakes; using stdlib fallback "
          "(syntax + unused imports)")
    return run_fallback(paths) or banned


if __name__ == "__main__":
    sys.exit(main())
