"""Benchmark runner: every ``benchmarks/bench_*.py``, one trajectory each.

Runs each benchmark module in its own pytest process (so a crash or
hang in one experiment cannot take down the rest), collects per-module
outcome and wall time, and appends one entry to the suite's own
``BENCH_<suite>.json`` — a JSON list, one entry per invocation, so
successive runs build a per-suite performance trajectory that
regressions show up in.  (Historically everything was appended to
``BENCH_statespace.json``; old aggregate-format entries in an existing
file are preserved and skipped by comparisons.)

Usage::

    python tools/bench.py                    # run everything
    python tools/bench.py --only parallel,statespace
    python tools/bench.py --only observability   # the obs smoke suite
    python tools/bench.py --compare          # fail on >25% regressions
    python tools/bench.py --out-dir /tmp/bench

``--compare`` checks each suite's wall time against its previous
trajectory entry and exits nonzero when it regressed by more than 25%.
Before anything runs, every selected suite's trajectory file is
checked up front: a missing, unreadable, empty, malformed, or
baseline-less ``BENCH_<suite>.json`` fails fast with a one-line error
and exit status 3 — there is nothing meaningful to compare against,
and silently "passing" would hide exactly the regression the flag
exists to catch.

Exit status: 0 clean; 1 when any benchmark module fails (pytest exit
codes other than 0/5; 5 = all tests skipped, which counts as a clean
skip) or, with ``--compare``, when any suite regressed; 2 when no
modules matched ``--only``; 3 when ``--compare`` has no usable
baseline for a selected suite.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"

#: pytest exit codes that do not indicate a broken benchmark.
_CLEAN_EXITS = (0, 5)  # 5: no tests ran (everything skipped)

#: ``--compare`` fails a suite whose wall time grew past this factor.
REGRESSION_FACTOR = 1.25


def bench_modules(only=None):
    """The benchmark files to run, optionally filtered by substring."""
    modules = sorted(BENCH_DIR.glob("bench_*.py"))
    if only:
        needles = [n.strip() for n in only.split(",") if n.strip()]
        modules = [
            m for m in modules if any(n in m.stem for n in needles)
        ]
    return modules


def suite_name(path: Path) -> str:
    """``bench_statespace.py`` -> ``statespace``."""
    return path.stem[len("bench_"):]


def run_module(path: Path) -> dict:
    """Run one benchmark module under pytest; returns its result row."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    started = time.perf_counter()
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", str(path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    elapsed = time.perf_counter() - started
    tail = [
        line
        for line in process.stdout.strip().splitlines()
        if line.strip()
    ]
    return {
        "module": path.name,
        "exit_code": process.returncode,
        "ok": process.returncode in _CLEAN_EXITS,
        "seconds": round(elapsed, 3),
        "summary": tail[-1] if tail else "",
    }


def read_trajectory(out_path: Path):
    """``(trajectory, problem)`` for the file at ``out_path``.

    ``problem`` is ``None`` when the file holds a JSON list (the
    trajectory format), else a one-line reason: ``missing``,
    ``unreadable: ...``, ``malformed JSON: ...``, or ``not a JSON
    list``.  Never raises — every way a trajectory file can be broken
    is reported as data so callers can choose between tolerating it
    (plain appends) and failing fast (``--compare``).
    """
    if not out_path.exists():
        return [], "missing"
    try:
        text = out_path.read_text()
    except OSError as error:
        return [], f"unreadable: {error}"
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError as error:
        return [], f"malformed JSON: {error}"
    if not isinstance(loaded, list):
        return [], "not a JSON list"
    return loaded, None


def load_trajectory(out_path: Path) -> list:
    """The existing trajectory list at ``out_path`` (tolerant of junk)."""
    trajectory, problem = read_trajectory(out_path)
    if problem is not None and problem != "missing":
        print(
            f"bench: warning: {out_path} is unusable ({problem}); "
            "starting a fresh trajectory",
            file=sys.stderr,
        )
    return trajectory


def previous_seconds(trajectory: list):
    """The newest comparable wall time in a trajectory, if any.

    Skips entries without a numeric ``seconds`` field — notably the
    historical aggregate format, whose entries carried
    ``total_seconds`` over many suites and are not comparable to a
    single suite's wall time.
    """
    for entry in reversed(trajectory):
        if isinstance(entry, dict) and isinstance(
            entry.get("seconds"), (int, float)
        ):
            return entry["seconds"]
    return None


def append_entry(out_path: Path, entry: dict) -> None:
    """Append ``entry`` to the JSON trajectory list at ``out_path``."""
    trajectory = load_trajectory(out_path)
    trajectory.append(entry)
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated substrings selecting benchmark modules "
             "(e.g. 'parallel,statespace')",
    )
    parser.add_argument(
        "--out-dir", default=str(REPO_ROOT), metavar="DIR",
        dest="out_dir",
        help="directory the per-suite BENCH_<suite>.json trajectories "
             "live in (default: the repository root)",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="exit nonzero when a suite's wall time regressed more "
             f"than {round((REGRESSION_FACTOR - 1) * 100)}%% vs its "
             "previous trajectory entry",
    )
    args = parser.parse_args(argv)

    modules = bench_modules(args.only)
    if not modules:
        print("bench: no benchmark modules matched", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    if args.compare:
        # Fail fast before burning benchmark time: a comparison run
        # with nothing to compare against would otherwise "pass".
        uncomparable = 0
        for module in modules:
            out_path = out_dir / f"BENCH_{suite_name(module)}.json"
            trajectory, problem = read_trajectory(out_path)
            if problem is None and previous_seconds(trajectory) is None:
                problem = "no previous entry with a numeric 'seconds'"
            if problem is not None:
                uncomparable += 1
                print(
                    f"bench: error: cannot compare "
                    f"{suite_name(module)}: {problem} ({out_path})",
                    file=sys.stderr,
                )
        if uncomparable:
            return 3

    failures = 0
    regressions = 0
    for module in modules:
        suite = suite_name(module)
        print(f"bench: running {module.name} ...", flush=True)
        row = run_module(module)
        failures += not row["ok"]
        status = "ok" if row["ok"] else f"FAILED (exit {row['exit_code']})"
        print(f"bench:   {status} in {row['seconds']:.1f}s  {row['summary']}")
        entry = {
            "timestamp": datetime.now(timezone.utc).isoformat(),
            "python": sys.version.split()[0],
            **row,
        }
        out_path = out_dir / f"BENCH_{suite}.json"
        baseline = previous_seconds(load_trajectory(out_path))
        append_entry(out_path, entry)
        if args.compare and baseline is not None:
            if row["seconds"] > baseline * REGRESSION_FACTOR:
                regressions += 1
                print(
                    f"bench:   REGRESSION: {suite} took "
                    f"{row['seconds']:.1f}s vs {baseline:.1f}s "
                    f"previously (> {REGRESSION_FACTOR:.2f}x)",
                    file=sys.stderr,
                )

    print(
        f"bench: {len(modules)} suite(s), {failures} failure(s), "
        f"{regressions} regression(s) -> {out_dir}/BENCH_<suite>.json"
    )
    return 1 if failures or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
