"""Benchmark runner: every ``benchmarks/bench_*.py``, one trajectory file.

Runs each benchmark module in its own pytest process (so a crash or
hang in one experiment cannot take down the rest), collects per-module
outcome and wall time, and appends one entry to ``BENCH_statespace.json``
— a JSON list, one entry per invocation, so successive runs build a
performance trajectory that regressions show up in.

Usage::

    python tools/bench.py                # run everything
    python tools/bench.py --only parallel,statespace
    python tools/bench.py --out other.json

Exits nonzero when any benchmark module fails (pytest exit codes other
than 0/5; 5 = all tests skipped, which counts as a clean skip).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUT = REPO_ROOT / "BENCH_statespace.json"

#: pytest exit codes that do not indicate a broken benchmark.
_CLEAN_EXITS = (0, 5)  # 5: no tests ran (everything skipped)


def bench_modules(only=None):
    """The benchmark files to run, optionally filtered by substring."""
    modules = sorted(BENCH_DIR.glob("bench_*.py"))
    if only:
        needles = [n.strip() for n in only.split(",") if n.strip()]
        modules = [
            m for m in modules if any(n in m.stem for n in needles)
        ]
    return modules


def run_module(path: Path) -> dict:
    """Run one benchmark module under pytest; returns its result row."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    started = time.perf_counter()
    process = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", str(path)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    elapsed = time.perf_counter() - started
    tail = [
        line
        for line in process.stdout.strip().splitlines()
        if line.strip()
    ]
    return {
        "module": path.name,
        "exit_code": process.returncode,
        "ok": process.returncode in _CLEAN_EXITS,
        "seconds": round(elapsed, 3),
        "summary": tail[-1] if tail else "",
    }


def append_entry(out_path: Path, entry: dict) -> None:
    """Append ``entry`` to the JSON trajectory list at ``out_path``."""
    trajectory = []
    if out_path.exists():
        try:
            loaded = json.loads(out_path.read_text())
            if isinstance(loaded, list):
                trajectory = loaded
        except json.JSONDecodeError:
            print(
                f"bench: warning: {out_path} is not valid JSON; "
                "starting a fresh trajectory",
                file=sys.stderr,
            )
    trajectory.append(entry)
    out_path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", default=None, metavar="NAMES",
        help="comma-separated substrings selecting benchmark modules "
             "(e.g. 'parallel,statespace')",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT), metavar="FILE.json",
        help="trajectory file to append to (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    modules = bench_modules(args.only)
    if not modules:
        print("bench: no benchmark modules matched", file=sys.stderr)
        return 2

    results = []
    for module in modules:
        print(f"bench: running {module.name} ...", flush=True)
        row = run_module(module)
        status = "ok" if row["ok"] else f"FAILED (exit {row['exit_code']})"
        print(f"bench:   {status} in {row['seconds']:.1f}s  {row['summary']}")
        results.append(row)

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "python": sys.version.split()[0],
        "modules_run": len(results),
        "failures": sum(1 for r in results if not r["ok"]),
        "total_seconds": round(sum(r["seconds"] for r in results), 3),
        "results": results,
    }
    out_path = Path(args.out)
    append_entry(out_path, entry)
    print(
        f"bench: {entry['modules_run']} module(s), "
        f"{entry['failures']} failure(s), "
        f"{entry['total_seconds']:.1f}s total -> {out_path}"
    )
    return 1 if entry["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
