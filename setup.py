"""Setuptools shim for environments without the wheel package.

The project is fully described in pyproject.toml; this file only lets
``pip install -e . --no-build-isolation`` fall back to the legacy
editable install path when ``bdist_wheel`` is unavailable offline.
"""

from setuptools import setup

setup()
